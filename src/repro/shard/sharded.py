"""Range-sharded tables: one logical table, N key-range shards.

The paper's PDT design localizes update state per table so merge cost
scales with delta size, not table size; sharding multiplies that property.
A :class:`ShardedTable` splits a logical table into key-range shards, each
a *full* physical table inside the owning database — its own stable image
(block-store backed, with a private buffer pool and I/O counters), its own
three-layer PDT stack, sparse index, WAL stream (per-commit entry lists
keyed by the shard's physical name), and its own checkpoint-scheduler
load, so hot shards fold independently while cold shards are never
touched.

Routing lives in :class:`~repro.shard.router.ShardRouter`; scans fan out
one block-pipelined MergeScan per shard — optionally on a
``concurrent.futures`` thread pool — and are re-concatenated in key order
with per-shard local RIDs rebased to global RIDs by the cumulative image
sizes of the preceding shards
(:func:`~repro.engine.scan.fanout_scan_blocks`). Shard splitting and
merging (the autonomous rebalancer) lives in
:mod:`~repro.shard.rebalance`.

Physical shard tables are named ``{logical}__s{gen}`` with a
per-logical-table generation counter, so the shards a rebalance creates
never collide with the ones it retires.
"""

from __future__ import annotations

import bisect
import contextlib
import threading
from concurrent.futures import ThreadPoolExecutor

from ..engine.scan import fanout_scan_blocks, scan_pdt_blocks
from ..storage.column import Column
from ..storage.io_stats import IOStats
from ..storage.schema import Schema, SchemaError
from ..storage.table import StableTable
from .router import ShardRouter

MAX_SCAN_WORKERS = 8


class ShardedTable:
    """A logical table physically partitioned into key-range shards."""

    def __init__(self, db, name: str, schema: Schema, router: ShardRouter,
                 shard_names: list[str], split_rows: int | None = None,
                 merge_rows: int | None = None, parallel: bool = True):
        if len(shard_names) != router.num_shards:
            raise ValueError("shard name count does not match boundaries")
        if split_rows is not None and merge_rows is not None \
                and merge_rows >= split_rows:
            raise ValueError(
                f"merge_rows ({merge_rows}) must be < split_rows "
                f"({split_rows})"
            )
        self.db = db
        self.name = name
        self.schema = schema
        self.router = router
        self.shard_names = list(shard_names)
        self.split_rows = split_rows
        self.merge_rows = merge_rows
        self.parallel = parallel
        self._gen = 1 + max(
            (int(n.rsplit("__s", 1)[1]) for n in shard_names), default=-1
        )
        self._executor: ThreadPoolExecutor | None = None
        # I/O accounting marks: last pool snapshot already folded into the
        # database-level counters (see merge_io_after). One lock serializes
        # concurrent flushes so every byte is merged exactly once.
        self._io_lock = threading.Lock()
        self._io_marks: dict = {}  # BufferPool -> IOSnapshot
        # Shards a rebalance replaced while snapshot pins still referenced
        # them, as (shard_name, private pool) pairs: their stable blocks
        # stay alive until the pins drain.
        self._retired_pending: list[tuple] = []

    # -- construction -----------------------------------------------------

    @classmethod
    def create(cls, db, name: str, schema: Schema, rows=(), shards: int = 4,
               boundaries=None, split_rows: int | None = None,
               merge_rows: int | None = None,
               parallel: bool = True) -> "ShardedTable":
        """Bulk-load ``rows`` into ``shards`` key-range shards.

        ``boundaries`` fixes the split keys explicitly; by default they
        are chosen at equal row-count quantiles of the sorted load
        (duplicate quantile keys on tiny loads collapse into fewer
        shards). Rows are coerced and sorted exactly once, then handed
        to the columnar path, which cuts shard slices by position.
        """
        coerced = sorted((schema.coerce_row(r) for r in rows),
                         key=schema.sk_of)
        for a, b in zip(coerced, coerced[1:]):
            if schema.sk_of(a) == schema.sk_of(b):
                raise SchemaError(f"duplicate sort key {schema.sk_of(a)!r}")
        arrays = {
            spec.name: Column.from_python(
                spec.name, spec.dtype, [row[i] for row in coerced]
            ).values
            for i, spec in enumerate(schema.columns)
        }
        return cls.create_from_arrays(
            db, name, schema, arrays, shards=shards, boundaries=boundaries,
            split_rows=split_rows, merge_rows=merge_rows, parallel=parallel,
        )

    @classmethod
    def create_from_arrays(cls, db, name: str, schema: Schema, arrays: dict,
                           shards: int = 4, boundaries=None,
                           split_rows: int | None = None,
                           merge_rows: int | None = None,
                           parallel: bool = True) -> "ShardedTable":
        """Bulk path for pre-sorted columnar data: boundaries are read
        straight off the sorted key columns (equal-count quantiles unless
        given explicitly) and each shard's stable image is a zero-copy
        array slice — no per-row coercion or re-sorting
        (``StableTable.from_arrays`` still validates the sort)."""
        if shards < 1:
            raise ValueError("need at least one shard")
        key_cols = [arrays[c] for c in schema.sort_key]
        n = len(key_cols[0]) if key_cols else 0
        if boundaries is None:
            cuts = sorted({
                at for i in range(1, shards)
                if 0 < (at := int(i * n / shards)) < n
            })
            boundaries = [tuple(col[at] for col in key_cols) for at in cuts]
        else:
            # Sorted input: each boundary cuts at the first row with
            # key >= boundary, so equal-to-boundary rows land right.
            boundaries = [tuple(b) for b in boundaries]
            keys = list(zip(*key_cols))
            cuts = [bisect.bisect_left(keys, b) for b in boundaries]
        router = ShardRouter(boundaries)
        edges = [0] + cuts + [n]
        shard_names = [f"{name}__s{i}" for i in range(len(edges) - 1)]
        sharded = cls(db, name, schema, router, shard_names,
                      split_rows=split_rows, merge_rows=merge_rows,
                      parallel=parallel)
        for shard_name, lo, hi in zip(shard_names, edges, edges[1:]):
            sharded.install_shard(StableTable.from_arrays(
                shard_name, schema,
                {c: arrays[c][lo:hi] for c in schema.column_names},
            ))
        sharded.log_layout()
        return sharded

    def next_shard_name(self) -> str:
        name = f"{self.name}__s{self._gen}"
        self._gen += 1
        return name

    def install_shard(self, stable: StableTable, read_pdt=None):
        """Register a shard's stable image on its *own* storage backend
        (scope = the shard's physical name) with a private buffer pool
        and (optionally) a pre-built Read-PDT (rebalance survivors).

        The shard's blocks are published (synced) before this returns:
        on durable storage a freshly installed shard survives a kill —
        whether its layout record does is decided by the WAL rewrite the
        caller commits afterwards, and an unreferenced scope is swept at
        the next reopen.
        """
        db = self.db
        pool = db.open_shard_pool(stable.name)
        stable.attach_storage(pool)
        pool.store.set_image_lsn(stable.name, db.manager._lsn)
        stable.image_lsn = db.manager._lsn
        stable.image_epoch = pool.store.table_epoch(stable.name)
        pool.store.sync()
        state = db.manager.register_table(stable)
        if read_pdt is not None and not read_pdt.is_empty():
            state.read_pdt = read_pdt
        state.last_commit_lsn = db.manager._lsn
        return state

    def retire_shard(self, shard_name: str) -> None:
        """Unregister a shard a rebalance replaced and queue its storage
        drop.

        The physical drop is always deferred to :meth:`drain_retired`:
        the rebalance must first commit the new layout's WAL rewrite —
        deleting files while the on-disk log still routes to the retired
        shard would lose data on a crash — and while a snapshot pin still
        references the shard the drop waits further, until the pins drain
        (shard names are never reused, so the retired image and its
        replacements coexist); pinned readers keep scanning the exact
        stable image they captured.
        """
        state = self.db.manager.unregister_table(shard_name)
        self.db.scheduler.forget(shard_name)
        self._retired_pending.append((shard_name, state.stable.pool))

    def _drop_shard_storage(self, shard_name: str, pool) -> None:
        if pool is not None:
            pool.store.drop_table(shard_name)
            pool.clear()
            with self._io_lock:
                self._io_marks.pop(pool, None)
            pool.store.close()
        # Retire the shard's whole storage scope: on file-backed storage
        # this deletes the shard's real segment and catalog files.
        self.db.storage.discard(shard_name)

    def drain_retired(self) -> int:
        """Drop storage of retired shards whose last pin has drained
        (called right after a rebalance commits its layout, and again at
        every later maintenance point); returns how many are still alive
        (waiting on pins)."""
        still_pinned = []
        for shard_name, pool in self._retired_pending:
            if self.db.manager.is_pinned(shard_name):
                still_pinned.append((shard_name, pool))
            else:
                self._drop_shard_storage(shard_name, pool)
        self._retired_pending = still_pinned
        return len(still_pinned)

    def log_layout(self) -> None:
        """Record the current boundaries + shard names (and the
        rebalancer configuration) in the WAL — the catalog leg of crash
        recovery."""
        self.db.manager.wal.append_shard_layout(
            self.name, self.router.boundaries, self.shard_names,
            lsn=self.db.manager._lsn,
            config={
                "split_rows": self.split_rows,
                "merge_rows": self.merge_rows,
                "parallel": self.parallel,
            },
        )

    @classmethod
    def restore(cls, db, name: str, layout: dict) -> "ShardedTable":
        """Rebuild the wrapper from a WAL shard-layout record; the shard
        stable tables must already be registered with ``db``.

        Shards registered through the generic recovery path share the
        database-wide buffer pool; they are re-attached to private
        per-shard pools here so fanned-out scans keep their race-free
        per-shard I/O counters.
        """
        shard_names = list(layout["shards"])
        schema = db.manager.state_of(shard_names[0]).schema
        router = ShardRouter(layout["boundaries"])
        config = layout.get("config", {})
        sharded = cls(
            db, name, schema, router, shard_names,
            split_rows=config.get("split_rows"),
            merge_rows=config.get("merge_rows"),
            parallel=config.get("parallel", True),
        )
        for shard in shard_names:
            state = db.manager.state_of(shard)
            if state.stable.pool is None or state.stable.pool is db.pool:
                state.stable.attach_storage(db.open_shard_pool(shard))
        return sharded

    # -- introspection ----------------------------------------------------

    @property
    def num_shards(self) -> int:
        return len(self.shard_names)

    @property
    def boundaries(self) -> list[tuple]:
        return list(self.router.boundaries)

    def shard_states(self):
        return [self.db.manager.state_of(n) for n in self.shard_names]

    def shard_layers(self, shard_name: str):
        return self.db.manager.latest_layers(shard_name)

    def row_count(self) -> int:
        total = 0
        for state in self.shard_states():
            total += state.stable.num_rows
            for layer in (state.read_pdt, state.write_pdt):
                total += layer.total_delta()
        return total

    def delta_bytes(self) -> int:
        return sum(
            state.read_pdt.memory_usage() + state.write_pdt.memory_usage()
            for state in self.shard_states()
        )

    def footprints(self) -> list[int]:
        """Per-shard stable+delta footprint (rows + PDT entries), the
        rebalancer's load measure."""
        return [
            state.stable.num_rows + state.read_pdt.count()
            + state.write_pdt.count()
            for state in self.shard_states()
        ]

    def io_stats(self) -> IOStats:
        """Aggregate of every shard's private I/O counters."""
        total = IOStats()
        for state in self.shard_states():
            if state.stable.pool is not None:
                total.merge(state.stable.pool.io)
        return total

    @contextlib.contextmanager
    def merge_io_after(self):
        """Fold whatever the enclosed shard reads charged to the private
        per-shard I/O counters into the database-level counters on exit —
        the single accounting hook every fanned-out read path (queries,
        transactional scans, update-resolution sweeps) wraps itself in,
        so ``db.io`` stays honest under sharding."""
        try:
            yield
        finally:
            self.flush_io()

    def flush_io(self) -> None:
        """Merge per-shard I/O counters into ``db.io`` exactly once.

        Per-pool *high-water marks* (the last snapshot already merged)
        replace the per-call before-snapshots the fanned read paths used
        to take: concurrent service requests scanning the same shard would
        otherwise each compute overlapping deltas and double-count every
        byte the other read. The single mark per pool, advanced under one
        lock, means each increment is attributed to whichever flush sees
        it first and to nothing else. Retired-but-pinned shards' pools are
        flushed too, so pinned readers' I/O stays visible.
        """
        pools = [
            state.stable.pool for state in self.shard_states()
            if state.stable.pool is not None
        ]
        pools.extend(p for _, p in self._retired_pending if p is not None)
        with self._io_lock:
            for pool in pools:
                snap = pool.io.snapshot()
                mark = self._io_marks.get(pool)
                delta = snap if mark is None else snap.minus(mark)
                self._io_marks[pool] = snap
                if delta.bytes_read < 0 or delta.blocks_read < 0:
                    # The pool's counters were rolled back under us
                    # (warm_table's restore); the new mark is all that
                    # matters — merging a negative delta would corrupt
                    # the database-level totals.
                    continue
                if delta.bytes_read or delta.blocks_read \
                        or delta.bytes_by_column:
                    self.db.io.merge(delta)

    def image_rows(self) -> list[tuple]:
        from ..core.stack import image_rows

        out: list[tuple] = []
        for name in self.shard_names:
            state = self.db.manager.state_of(name)
            out.extend(image_rows(state.stable, self.shard_layers(name)))
        return out

    # -- routing ----------------------------------------------------------

    def physical_for(self, sk) -> str:
        """Physical shard table owning sort key ``sk``."""
        return self.shard_names[self.router.shard_of(sk)]

    def split_ops(self, ops) -> list[tuple[str, list]]:
        """Split a batch into non-empty ``(physical_name, sub_batch)``
        pairs, preserving op order within each shard."""
        parts = self.router.split_ops(self.schema, ops)
        return [
            (self.shard_names[i], part)
            for i, part in enumerate(parts) if part
        ]

    # -- scanning ---------------------------------------------------------

    def _pool_executor(self) -> ThreadPoolExecutor | None:
        if not self.parallel or self.num_shards < 2:
            return None
        workers = min(self.num_shards, MAX_SCAN_WORKERS)
        if self._executor is None or self._executor._max_workers < workers:
            if self._executor is not None:
                self._executor.shutdown(wait=False)
            self._executor = ThreadPoolExecutor(
                max_workers=workers,
                thread_name_prefix=f"shard-scan-{self.name}",
            )
        return self._executor

    def scan_blocks(self, columns=None, batch_rows: int = 4096,
                    parallel: bool | None = None):
        """Stream the merged logical image as ``(global_rid, arrays)``
        blocks, one MergeScan pipeline per shard.

        The per-shard pipelines read through their shard's private buffer
        pool/IOStats (no cross-thread counter races); the per-scan I/O
        deltas are merged into the database-level counters when the stream
        completes. Shard sources are captured eagerly, so the stream is a
        snapshot of the latest-committed state at call time.
        """
        from ..exec.router import ScanSource

        if columns is None:
            columns = list(self.schema.column_names)
        use_parallel = self.parallel if parallel is None else parallel
        router = getattr(self.db, "exec_router", None)
        executor = None
        if use_parallel:
            executor = (router.fanout_executor()
                        if router is not None else None) \
                or self._pool_executor()
        # Span context captured on the submitting thread: fanned sources
        # run on pool threads where contextvars would read nothing, yet
        # their worker-side spans should stitch under the query span.
        tracer = getattr(router, "tracer", None)
        trace_ctx = tracer.ctx() if tracer is not None and tracer.enabled \
            else None
        sources = []
        for name in self.shard_names:
            state = self.db.manager.state_of(name)
            layers = self.db.manager.latest_layers(name)

            def local(stable=state.stable, layers=layers):
                return scan_pdt_blocks(
                    stable, layers, columns=columns, block_rows=batch_rows
                )

            sources.append(ScanSource(
                local, stable=state.stable, layers=layers, columns=columns,
                block_rows=batch_rows, trace_ctx=trace_ctx,
            ))

        def stream():
            with self.merge_io_after():
                yield from fanout_scan_blocks(sources, executor=executor)

        return stream()

    # -- maintenance ------------------------------------------------------

    def checkpoint(self) -> None:
        """Fold every shard's deltas into fresh shard stable images."""
        from ..txn.checkpoint import checkpoint_table

        for name in self.shard_names:
            checkpoint_table(self.db.manager, name)

    def maintain(self, write_limit_bytes: int) -> None:
        for name in self.shard_names:
            self.db.manager.maybe_propagate(name, write_limit_bytes)

    def maybe_rebalance(self) -> int:
        """Run the autonomous rebalancer (quiescent points only); returns
        the number of split/merge actions taken."""
        from .rebalance import maybe_rebalance

        return maybe_rebalance(self)

    def close(self) -> None:
        """Join the scan executor and drop retired shards' storage.

        Called from :meth:`Database.close`; interpreters then exit without
        lingering non-daemon pool threads. Retired shards still waiting on
        pins are dropped unconditionally — shutdown outlives any reader.
        """
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        for shard_name, pool in self._retired_pending:
            self._drop_shard_storage(shard_name, pool)
        self._retired_pending = []

    def __repr__(self) -> str:
        return (
            f"ShardedTable({self.name!r}, shards={self.num_shards}, "
            f"rows={self.row_count()})"
        )
