"""Autonomous shard rebalancing: splitting hot shards, merging cold ones.

A skewed update stream concentrates PDT entries (and, through inserts,
stable rows) in a few shards; rebalancing keeps per-shard footprints
bounded so per-shard maintenance stays cheap — the same argument
``checkpoint_table_range`` makes for block ranges, lifted to whole shards.

Both operations are stable-image rewrites and follow the same invariants
as checkpoints:

* **Quiescence.** Running transactions hold Write-PDT snapshots and
  Trans-PDT entries in the old shards' RID domains; a rewrite under them
  would double-apply or mis-address. Split/merge therefore require
  ``running_count() == 0`` (the scheduler's quiescent points), and the
  committed Write-PDT is propagated down first so only the Read-PDT needs
  redistributing.
* **SID rebasing.** A split at stable position ``mid`` keeps left-side
  entries verbatim and rebases right-side entries by ``-mid`` — exactly
  how ``checkpoint_table_range`` rebases suffix SIDs, with one refinement:
  an *insert* at SID ``mid`` sorts before the stable tuple at ``mid``
  (ghost-respecting SID assignment guarantees its key is below the split
  key), so it stays with the left shard as a trailing insert, while
  deletes/modifies at ``mid`` address the right shard's first stable row.
  A merge is the inverse: right-side entries shift by ``+left_rows``, and
  appending left entries then rebased right entries preserves the relative
  order of same-SID boundary inserts (left trailing inserts carry smaller
  keys than the right shard's leading inserts).
* **WAL rebasing.** The retired shards' logged history is dropped and the
  surviving (redistributed) Read-PDTs are re-logged as snapshot records
  consecutive to the new shard images, then the new layout is logged — so
  recovery replays exactly the still-live deltas against the shards that
  actually exist.
"""

from __future__ import annotations

import numpy as np

from ..core.pdt import PDT
from ..core.types import KIND_DEL, KIND_INS
from ..storage.column import Column
from ..storage.table import StableTable


def _pdt_payload(pdt: PDT, kind: int, ref):
    if kind == KIND_INS:
        return list(pdt.values.get_insert(ref))
    if kind == KIND_DEL:
        return pdt.values.get_delete(ref)
    return pdt.values.get_modify(kind, ref)


def _slice_stable(name: str, stable: StableTable, lo: int,
                  hi: int) -> StableTable:
    columns = [
        Column(spec.name, spec.dtype,
               np.array(stable.column(spec.name).values[lo:hi]))
        for spec in stable.schema.columns
    ]
    return StableTable(name, stable.schema, columns)


def _concat_stable(name: str, left: StableTable,
                   right: StableTable) -> StableTable:
    columns = [
        Column(
            spec.name, spec.dtype,
            np.concatenate([
                left.column(spec.name).values, right.column(spec.name).values
            ]) if left.num_rows and right.num_rows
            else np.array((left if left.num_rows else right)
                          .column(spec.name).values),
        )
        for spec in left.schema.columns
    ]
    return StableTable(name, left.schema, columns)


def _split_read_pdt(read_pdt: PDT, mid: int, split_key: tuple,
                    schema) -> tuple[PDT, PDT]:
    """Redistribute a shard's Read-PDT across a split at stable SID
    ``mid``: left entries verbatim, right entries rebased by ``-mid``.

    Entries at SID ``mid`` need care. Deletes/modifies there address the
    right shard's first stable row. An *insert* there sorts before that
    row, so ghost-respecting SID assignment bounds its key by
    ``key <= split_key`` — strictly below for ordinary boundary inserts
    (→ left shard, as a trailing insert), but *equal* when the stable row
    at ``mid`` was deleted and its key reinserted; that row belongs to
    the right shard, where the router owns ``split_key``. Hence inserts
    at ``mid`` are routed by comparing their key against ``split_key``,
    which also keeps each side's same-SID insert runs in key order.
    """
    left, right = PDT(schema, fanout=read_pdt.fanout), \
        PDT(schema, fanout=read_pdt.fanout)
    left_entries, right_entries = [], []
    sids, kinds, refs = read_pdt.entry_lists()
    for sid, kind, ref in zip(sids, kinds, refs):
        payload = _pdt_payload(read_pdt, kind, ref)
        if kind == KIND_INS and sid == mid:
            goes_left = tuple(schema.sk_of(payload)) < tuple(split_key)
        else:
            goes_left = sid < mid
        if goes_left:
            left_entries.append((sid, kind, payload))
        else:
            right_entries.append((sid - mid, kind, payload))
    left.bulk_append_entries(left_entries)
    right.bulk_append_entries(right_entries)
    return left, right


def _merged_read_pdt(left_state, right_state, schema) -> PDT:
    """Combine two adjacent shards' Read-PDTs: left verbatim, right
    rebased by ``+left_rows`` (appended after, so boundary inserts keep
    key order)."""
    merged = PDT(schema)
    shift = left_state.stable.num_rows
    entries = []
    for state, delta in ((left_state, 0), (right_state, shift)):
        pdt = state.read_pdt
        sids, kinds, refs = pdt.entry_lists()
        for sid, kind, ref in zip(sids, kinds, refs):
            entries.append((sid + delta, kind, _pdt_payload(pdt, kind, ref)))
    merged.bulk_append_entries(entries)
    return merged


def _swap_in(sharded, retired: list[str], installed: list[tuple],
             at: int, n_replaced: int) -> None:
    """Atomically replace ``n_replaced`` shards at position ``at`` with the
    freshly built ``(name, stable, read_pdt)`` shards, then rebase the WAL
    and log the new layout. All new state is fully built before any
    registry mutation, so a failure while building leaves the old layout
    untouched."""
    db = sharded.db
    for name, stable, read_pdt in installed:
        sharded.install_shard(stable, read_pdt=read_pdt)
    sharded.shard_names[at:at + n_replaced] = [n for n, _, _ in installed]
    # One atomic log rewrite: dropping retired history, re-logging the
    # survivor snapshots, and the new layout must hit disk together. The
    # new shard images were published by install_shard *before* this
    # commit point, and the retired shards' physical storage is dropped
    # only *after* it (drain_retired below) — so a kill on either side
    # recovers a complete layout: old shards + old log, or new shards +
    # new log (orphaned scopes are swept at reopen).
    with db.manager.wal.atomic():
        for name in retired:
            sharded.retire_shard(name)
            db.manager.wal.rebase_table(name)
        for name, _, read_pdt in installed:
            if read_pdt is not None and not read_pdt.is_empty():
                db.manager.wal.rebase_table(name, read_pdt,
                                            lsn=db.manager._lsn)
        sharded.log_layout()
    sharded.drain_retired()


def split_shard(sharded, index: int) -> bool:
    """Split shard ``index`` at its stable midpoint key. Returns False
    when the split cannot run (not quiescent, or too few stable rows to
    pick a midpoint boundary)."""
    db = sharded.db
    manager = db.manager
    if manager.running_count():
        return False
    shard_name = sharded.shard_names[index]
    manager.propagate_write_to_read(shard_name)
    state = manager.state_of(shard_name)
    stable = state.stable
    mid = stable.num_rows // 2
    if mid == 0:
        return False
    split_key = stable.sk_at(mid)
    low, high = sharded.router.key_range(index)
    if (low is not None and split_key <= low) or \
            (high is not None and split_key >= high):
        return False  # degenerate shard: all rows share the boundary side
    left_name = sharded.next_shard_name()
    right_name = sharded.next_shard_name()
    left_stable = _slice_stable(left_name, stable, 0, mid)
    right_stable = _slice_stable(right_name, stable, mid, stable.num_rows)
    left_pdt, right_pdt = _split_read_pdt(state.read_pdt, mid, split_key,
                                          sharded.schema)
    sharded.router.insert_boundary(index, split_key)
    _swap_in(
        sharded, retired=[shard_name],
        installed=[(left_name, left_stable, left_pdt),
                   (right_name, right_stable, right_pdt)],
        at=index, n_replaced=1,
    )
    return True


def merge_adjacent(sharded, index: int) -> bool:
    """Merge shards ``index`` and ``index + 1``. Returns False when not
    quiescent or there is no right neighbour."""
    db = sharded.db
    manager = db.manager
    if manager.running_count() or index + 1 >= sharded.num_shards:
        return False
    left_name = sharded.shard_names[index]
    right_name = sharded.shard_names[index + 1]
    manager.propagate_write_to_read(left_name)
    manager.propagate_write_to_read(right_name)
    left_state = manager.state_of(left_name)
    right_state = manager.state_of(right_name)
    new_name = sharded.next_shard_name()
    new_stable = _concat_stable(new_name, left_state.stable,
                                right_state.stable)
    new_pdt = _merged_read_pdt(left_state, right_state, sharded.schema)
    sharded.router.remove_boundary(index)
    _swap_in(
        sharded, retired=[left_name, right_name],
        installed=[(new_name, new_stable, new_pdt)],
        at=index, n_replaced=2,
    )
    return True


def maybe_rebalance(sharded, max_actions: int = 8) -> int:
    """Split shards whose stable+delta footprint exceeds ``split_rows``
    and merge adjacent pairs whose combined footprint falls below
    ``merge_rows``. No-ops entirely unless the system is quiescent.

    ``merge_rows`` must stay below ``split_rows`` — otherwise a freshly
    split pair (combined footprint just above ``split_rows``) would
    qualify for an immediate re-merge and every query would churn the
    same shard forever. Checked here (not only at construction) because
    the thresholds are plain mutable attributes.
    """
    if (sharded.split_rows is not None and sharded.merge_rows is not None
            and sharded.merge_rows >= sharded.split_rows):
        raise ValueError(
            f"merge_rows ({sharded.merge_rows}) must be < split_rows "
            f"({sharded.split_rows}); equal or larger thresholds make "
            f"split/merge oscillate"
        )
    if sharded.db.manager.running_count():
        return 0
    # A quiescent point is also where retired-but-pinned shard storage
    # gets dropped once the pins that captured it drain.
    sharded.drain_retired()
    if any(sharded.db.manager.is_pinned(name)
           for name in sharded.shard_names):
        # Live snapshot pins hold this table's current shard layout and
        # images; restructuring now would strand their block drops and
        # copy every touched Read-PDT. Pins are short-lived (one streamed
        # request) — defer to the next maintenance point, exactly as the
        # checkpoint scheduler defers folds.
        return 0
    actions = 0
    if sharded.split_rows is not None:
        while actions < max_actions:
            footprints = sharded.footprints()
            over = [i for i, f in enumerate(footprints)
                    if f > sharded.split_rows]
            if not over:
                break
            hottest = max(over, key=lambda i: footprints[i])
            if not split_shard(sharded, hottest):
                break
            actions += 1
    if sharded.merge_rows is not None:
        while actions < max_actions and sharded.num_shards > 1:
            footprints = sharded.footprints()
            pairs = [
                (footprints[i] + footprints[i + 1], i)
                for i in range(len(footprints) - 1)
            ]
            combined, at = min(pairs)
            if combined >= sharded.merge_rows:
                break
            if not merge_adjacent(sharded, at):
                break
            actions += 1
    return actions
