"""Vectorized query engine: relations, expressions, and scan operators."""

from . import functions
from .relation import EngineError, GroupBy, Relation
from .scan import (
    ScanTimer,
    fanout_scan_blocks,
    rebase_block_streams,
    scan_clean,
    scan_pdt,
    scan_vdt,
)

__all__ = [
    "EngineError",
    "GroupBy",
    "Relation",
    "ScanTimer",
    "fanout_scan_blocks",
    "functions",
    "rebase_block_streams",
    "scan_clean",
    "scan_pdt",
    "scan_vdt",
]
