"""Vectorized query engine: relations, expressions, and scan operators."""

from . import expr, functions
from .expr import AggSpec, Expr
from .relation import EngineError, GroupBy, Relation
from .scan import (
    ScanTimer,
    fanout_scan_blocks,
    rebase_block_streams,
    scan_clean,
    scan_pdt,
    scan_vdt,
)

__all__ = [
    "AggSpec",
    "EngineError",
    "Expr",
    "GroupBy",
    "Relation",
    "ScanTimer",
    "expr",
    "fanout_scan_blocks",
    "functions",
    "rebase_block_streams",
    "scan_clean",
    "scan_pdt",
    "scan_vdt",
]
