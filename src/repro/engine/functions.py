"""Scalar and vectorized helper functions for query expressions.

Dates are int32 days since 1970-01-01 (the storage ``DATE`` type); helpers
convert to and from calendar form and extract parts vectorized. String
predicates implement the LIKE shapes TPC-H uses.
"""

from __future__ import annotations

import datetime
import re

import numpy as np

_EPOCH = datetime.date(1970, 1, 1).toordinal()


def days(year: int, month: int, day: int) -> int:
    """Calendar date -> int32 day number."""
    return datetime.date(year, month, day).toordinal() - _EPOCH


def date_of(day_number: int) -> datetime.date:
    """Int day number -> calendar date."""
    return datetime.date.fromordinal(int(day_number) + _EPOCH)


def add_years(day_number: int, n: int) -> int:
    d = date_of(day_number)
    return days(d.year + n, d.month, d.day)


def add_months(day_number: int, n: int) -> int:
    d = date_of(day_number)
    month = d.month - 1 + n
    year = d.year + month // 12
    month = month % 12 + 1
    day = min(
        d.day,
        [31, 29 if _leap(year) else 28, 31, 30, 31, 30, 31, 31, 30, 31, 30,
         31][month - 1],
    )
    return days(year, month, day)


def add_days(day_number: int, n: int) -> int:
    return int(day_number) + n


def _leap(year: int) -> bool:
    return year % 4 == 0 and (year % 100 != 0 or year % 400 == 0)


def year_of(day_numbers: np.ndarray) -> np.ndarray:
    """Vectorized year extraction from day-number arrays."""
    dt = np.asarray(day_numbers, dtype="datetime64[D]")
    return dt.astype("datetime64[Y]").astype(np.int64) + 1970


def month_of(day_numbers: np.ndarray) -> np.ndarray:
    dt = np.asarray(day_numbers, dtype="datetime64[D]")
    months = dt.astype("datetime64[M]").astype(np.int64)
    return months % 12 + 1


def starts_with(column: np.ndarray, prefix: str) -> np.ndarray:
    return np.array([str(v).startswith(prefix) for v in column], dtype=bool)


def ends_with(column: np.ndarray, suffix: str) -> np.ndarray:
    return np.array([str(v).endswith(suffix) for v in column], dtype=bool)


def contains(column: np.ndarray, needle: str) -> np.ndarray:
    return np.array([needle in str(v) for v in column], dtype=bool)


def like(column: np.ndarray, pattern: str) -> np.ndarray:
    """SQL LIKE with % and _ wildcards."""
    regex = re.compile(
        "^" + re.escape(pattern).replace("%", ".*").replace("_", ".") + "$",
        re.DOTALL,
    )
    return np.array(
        [bool(regex.match(str(v))) for v in column], dtype=bool
    )


def isin(column: np.ndarray, values) -> np.ndarray:
    values = set(values)
    if column.dtype == object:
        return np.array([v in values for v in column], dtype=bool)
    return np.isin(column, list(values))


def between(column: np.ndarray, low, high) -> np.ndarray:
    """Inclusive range predicate."""
    return (column >= low) & (column <= high)


def substring(column: np.ndarray, start: int, length: int) -> np.ndarray:
    """1-based SQL SUBSTRING."""
    out = np.empty(len(column), dtype=object)
    out[:] = [str(v)[start - 1 : start - 1 + length] for v in column]
    return out


def lex_ge(columns, bound) -> np.ndarray:
    """Row-wise lexicographic ``(columns...) >= bound`` over aligned
    arrays; ``bound`` may be a prefix of the column list."""
    bound = tuple(bound)
    n = len(columns[0]) if columns else 0
    result = np.zeros(n, dtype=bool)
    equal_so_far = np.ones(n, dtype=bool)
    for arr, value in zip(columns, bound):
        result |= equal_so_far & (arr > value)
        equal_so_far = equal_so_far & (arr == value)
    return result | equal_so_far


def lex_le(columns, bound) -> np.ndarray:
    """Row-wise lexicographic comparison against an upper bound.

    A prefix bound is inclusive of every extension (``("Paris",)`` admits
    all Paris rows), matching SQL prefix range predicates on compound sort
    keys."""
    bound = tuple(bound)
    n = len(columns[0]) if columns else 0
    result = np.zeros(n, dtype=bool)
    equal_so_far = np.ones(n, dtype=bool)
    for arr, value in zip(columns, bound):
        result |= equal_so_far & (arr < value)
        equal_so_far = equal_so_far & (arr == value)
    return result | equal_so_far
