"""A small vectorized relational dataflow engine over numpy columns.

This is the reproduction's stand-in for the VectorWise execution engine:
queries are expressed as chains of materialized, column-vector operators —
filter, project, equi-join (inner/left/semi/anti), grouped aggregation,
sort, limit — enough to run all 22 TPC-H queries (:mod:`repro.tpch.queries`).

Keys of any type (including strings and multi-column composites) are
*factorized* into dense integer codes with :func:`numpy.unique`, after
which joins, grouping, sorting, and distinct are uniform vectorized
integer operations.
"""

from __future__ import annotations

import numpy as np


class EngineError(RuntimeError):
    """Malformed query construction (unknown column, arity mismatch...)."""


def _as_object_array(values) -> np.ndarray:
    arr = np.empty(len(values), dtype=object)
    arr[:] = list(values)
    return arr


def _codes_of(column: np.ndarray) -> np.ndarray:
    """Dense order-preserving integer codes for one column."""
    _, inverse = np.unique(column, return_inverse=True)
    return inverse.astype(np.int64)


def _combined_codes(columns) -> np.ndarray:
    """Order-preserving codes for a composite key (row-wise tuples)."""
    codes = None
    for column in columns:
        inv = _codes_of(column)
        k = int(inv.max()) + 1 if len(inv) else 1
        codes = inv if codes is None else codes * k + inv
    if codes is None:
        raise EngineError("composite key needs at least one column")
    return codes


class Relation:
    """An immutable bag of equal-length named numpy columns."""

    def __init__(self, columns: dict):
        lengths = {len(v) for v in columns.values()}
        if len(lengths) > 1:
            raise EngineError(f"ragged columns: { {k: len(v) for k, v in columns.items()} }")
        self._cols = {k: np.asarray(v) if not isinstance(v, np.ndarray) else v
                      for k, v in columns.items()}
        self.num_rows = lengths.pop() if lengths else 0

    # -- construction --------------------------------------------------------

    @classmethod
    def from_batches(cls, columns, stream) -> "Relation":
        """Materialize a ``(first_rid, {col: array})`` batch stream."""
        pieces: dict[str, list] = {c: [] for c in columns}
        for _, arrays in stream:
            for c in columns:
                pieces[c].append(arrays[c])
        out = {}
        for c in columns:
            if len(pieces[c]) == 1:
                out[c] = pieces[c][0]  # single block: no concat copy
            elif pieces[c]:
                out[c] = np.concatenate(pieces[c])
            else:
                out[c] = np.empty(0, dtype=object)
        return cls(out)

    @classmethod
    def from_rows(cls, names, rows) -> "Relation":
        cols = {}
        for i, name in enumerate(names):
            values = [r[i] for r in rows]
            if values and isinstance(values[0], str):
                cols[name] = _as_object_array(values)
            else:
                cols[name] = np.asarray(values)
        if not rows:
            cols = {name: np.empty(0, dtype=object) for name in names}
        return cls(cols)

    # -- basic access ----------------------------------------------------------

    @property
    def column_names(self) -> list[str]:
        return list(self._cols)

    def __getitem__(self, name: str) -> np.ndarray:
        try:
            return self._cols[name]
        except KeyError:
            raise EngineError(
                f"unknown column {name!r}; have {list(self._cols)}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._cols

    def __len__(self) -> int:
        return self.num_rows

    def rows(self) -> list[tuple]:
        names = self.column_names
        return [
            tuple(self._cols[n][i] for n in names) for i in range(self.num_rows)
        ]

    def to_dict(self) -> dict:
        return dict(self._cols)

    def __repr__(self) -> str:
        return f"Relation(rows={self.num_rows}, cols={self.column_names})"

    # -- row-preserving operators ------------------------------------------------

    def filter(self, mask: np.ndarray) -> "Relation":
        mask = np.asarray(mask, dtype=bool)
        if len(mask) != self.num_rows:
            raise EngineError("filter mask length mismatch")
        return Relation({k: v[mask] for k, v in self._cols.items()})

    def select(self, *names: str) -> "Relation":
        return Relation({n: self[n] for n in names})

    def rename(self, **mapping: str) -> "Relation":
        """``rename(old=new)``: relabel columns."""
        cols = {}
        for name, arr in self._cols.items():
            cols[mapping.get(name, name)] = arr
        return Relation(cols)

    def with_columns(self, **arrays) -> "Relation":
        cols = dict(self._cols)
        for name, arr in arrays.items():
            arr = np.asarray(arr) if not isinstance(arr, np.ndarray) else arr
            if arr.ndim == 0:
                arr = np.full(self.num_rows, arr[()])
            if len(arr) != self.num_rows:
                raise EngineError(f"column {name!r} length mismatch")
            cols[name] = arr
        return Relation(cols)

    def take(self, positions) -> "Relation":
        idx = np.asarray(positions)
        return Relation({k: v[idx] for k, v in self._cols.items()})

    def concat(self, other: "Relation") -> "Relation":
        if set(self._cols) != set(other._cols):
            raise EngineError("concat requires identical column sets")
        return Relation(
            {k: np.concatenate([v, other[k]]) for k, v in self._cols.items()}
        )

    def distinct(self, *names: str) -> "Relation":
        """Unique rows over ``names`` (all columns if empty)."""
        names = names or tuple(self.column_names)
        if self.num_rows == 0:
            return self.select(*names)
        codes = _combined_codes([self[n] for n in names])
        _, first = np.unique(codes, return_index=True)
        return Relation({n: self[n][np.sort(first)] for n in names})

    # -- joins ----------------------------------------------------------------

    def join(
        self,
        other: "Relation",
        left_on,
        right_on=None,
        how: str = "inner",
        suffix: str = "_r",
    ) -> "Relation":
        """Equi-join. ``how`` is inner | left | semi | anti.

        semi/anti return (filtered) left rows only. left joins add a
        boolean ``_matched`` column; unmatched right columns hold zeros /
        empty strings.
        """
        left_on = [left_on] if isinstance(left_on, str) else list(left_on)
        right_on = (
            left_on if right_on is None
            else [right_on] if isinstance(right_on, str) else list(right_on)
        )
        if len(left_on) != len(right_on):
            raise EngineError("join key arity mismatch")
        if how not in ("inner", "left", "semi", "anti"):
            raise EngineError(f"unsupported join type {how!r}")

        lcodes, rcodes = self._join_codes(other, left_on, right_on)
        order = np.argsort(rcodes, kind="stable")
        sorted_codes = rcodes[order]
        lo = np.searchsorted(sorted_codes, lcodes, side="left")
        hi = np.searchsorted(sorted_codes, lcodes, side="right")
        counts = hi - lo

        if how == "semi":
            return self.filter(counts > 0)
        if how == "anti":
            return self.filter(counts == 0)

        if how == "left":
            out_counts = np.maximum(counts, 1)
        else:
            out_counts = counts
        total = int(out_counts.sum())
        left_idx = np.repeat(np.arange(self.num_rows), out_counts)
        starts = np.zeros(self.num_rows, dtype=np.int64)
        np.cumsum(out_counts[:-1], out=starts[1:])
        offsets = np.arange(total) - np.repeat(starts, out_counts)
        matched = np.repeat(counts > 0, out_counts)
        right_pos = np.repeat(lo, out_counts) + offsets
        right_pos = np.where(matched, right_pos, 0)
        right_idx = order[np.clip(right_pos, 0, max(len(order) - 1, 0))] \
            if len(order) else np.zeros(total, dtype=np.int64)

        cols = {k: v[left_idx] for k, v in self._cols.items()}
        for name, arr in other._cols.items():
            out_name = name if name not in cols else name + suffix
            if len(order):
                taken = arr[right_idx]
            else:
                taken = self._null_column(arr, total)
            if how == "left":
                taken = self._mask_unmatched(taken, matched)
            cols[out_name] = taken
        if how == "left":
            cols["_matched"] = matched
        return Relation(cols)

    def _join_codes(self, other, left_on, right_on):
        lcodes = rcodes = None
        for lname, rname in zip(left_on, right_on):
            both = np.concatenate([self[lname], other[rname]])
            inv = _codes_of(both)
            k = int(inv.max()) + 1 if len(inv) else 1
            linv, rinv = inv[: self.num_rows], inv[self.num_rows:]
            if lcodes is None:
                lcodes, rcodes = linv, rinv
            else:
                lcodes = lcodes * k + linv
                rcodes = rcodes * k + rinv
        return lcodes, rcodes

    @staticmethod
    def _null_column(template: np.ndarray, n: int) -> np.ndarray:
        if template.dtype == object:
            out = np.empty(n, dtype=object)
            out[:] = ""
            return out
        return np.zeros(n, dtype=template.dtype)

    @staticmethod
    def _mask_unmatched(arr: np.ndarray, matched: np.ndarray) -> np.ndarray:
        out = arr.copy()
        if out.dtype == object:
            out[~matched] = ""
        else:
            out[~matched] = 0
        return out

    # -- aggregation -------------------------------------------------------------

    def group_by(self, *keys: str) -> "GroupBy":
        return GroupBy(self, list(keys))

    # -- ordering ---------------------------------------------------------------

    def order_by(self, *spec) -> "Relation":
        """``order_by(("col", "asc"|"desc"), ...)`` or plain column names
        (ascending). Stable across equal keys."""
        if self.num_rows == 0 or not spec:
            return self
        norm = [
            (s, "asc") if isinstance(s, str) else (s[0], s[1]) for s in spec
        ]
        # lexsort sorts by the LAST key first; feed keys reversed.
        code_arrays = []
        for name, direction in reversed(norm):
            arr = self[name]
            if arr.dtype == object:
                codes = _codes_of(arr)
            else:
                codes = arr
            if direction == "desc":
                codes = -codes.astype(np.float64) if codes.dtype != object \
                    else codes
            elif direction != "asc":
                raise EngineError(f"bad sort direction {direction!r}")
            code_arrays.append(codes)
        order = np.lexsort(code_arrays)
        return self.take(order)

    def limit(self, n: int) -> "Relation":
        return Relation({k: v[:n] for k, v in self._cols.items()})


class GroupBy:
    """Grouped aggregation: ``rel.group_by("a").agg(x=("v", "sum"))``.

    Supported functions: sum, count, avg, min, max, count_distinct.
    ``("*", "count")`` counts rows. With no keys, aggregates globally
    (always returning exactly one row).
    """

    _FUNCS = ("sum", "count", "avg", "min", "max", "count_distinct")

    def __init__(self, relation: Relation, keys: list[str]):
        self.relation = relation
        self.keys = keys

    def agg(self, **specs) -> Relation:
        rel = self.relation
        for name, (col, func) in specs.items():
            if func not in self._FUNCS:
                raise EngineError(f"unknown aggregate {func!r}")
            if col != "*" and col not in rel:
                raise EngineError(f"unknown aggregate column {col!r}")

        if not self.keys:
            group_ids = np.zeros(rel.num_rows, dtype=np.int64)
            n_groups = 1
            rep_positions = np.zeros(0, dtype=np.int64)
        else:
            codes = _combined_codes([rel[k] for k in self.keys])
            uniq, rep_positions, group_ids = np.unique(
                codes, return_index=True, return_inverse=True
            )
            n_groups = len(uniq)

        out: dict[str, np.ndarray] = {}
        for key in self.keys:
            out[key] = rel[key][rep_positions]
        for name, (col, func) in specs.items():
            out[name] = self._compute(rel, group_ids, n_groups, col, func)
        return Relation(out)

    def _compute(self, rel, group_ids, n_groups, col, func) -> np.ndarray:
        if rel.num_rows == 0:
            if not self.keys and func in ("count", "count_distinct"):
                return np.zeros(1, dtype=np.int64)
            if not self.keys:
                return np.zeros(1, dtype=np.float64)
            return np.empty(0, dtype=np.float64)
        if func == "count":
            return np.bincount(group_ids, minlength=n_groups)
        if func == "count_distinct":
            value_codes = _codes_of(rel[col])
            k = int(value_codes.max()) + 1
            uniq_pairs = np.unique(group_ids * k + value_codes)
            return np.bincount(
                (uniq_pairs // k).astype(np.int64), minlength=n_groups
            )
        values = rel[col]
        if func == "sum":
            return self._sum(values, group_ids, n_groups)
        if func == "avg":
            sums = self._sum(values, group_ids, n_groups)
            counts = np.bincount(group_ids, minlength=n_groups)
            return sums / np.maximum(counts, 1)
        if func in ("min", "max"):
            return self._minmax(values, group_ids, n_groups, func)
        raise EngineError(f"unknown aggregate {func!r}")

    @staticmethod
    def _sum(values, group_ids, n_groups):
        if values.dtype == object:
            raise EngineError("sum over non-numeric column")
        sums = np.bincount(
            group_ids, weights=values.astype(np.float64), minlength=n_groups
        )
        if np.issubdtype(values.dtype, np.integer) or values.dtype == bool:
            return np.rint(sums).astype(np.int64)
        return sums

    @staticmethod
    def _minmax(values, group_ids, n_groups, func):
        if values.dtype == object:
            out = [None] * n_groups
            better = (lambda a, b: a < b) if func == "min" else (
                lambda a, b: a > b
            )
            for gid, val in zip(group_ids, values):
                if out[gid] is None or better(val, out[gid]):
                    out[gid] = val
            return _as_object_array(out)
        if func == "min":
            out = np.full(n_groups, np.inf)
            np.minimum.at(out, group_ids, values.astype(np.float64))
        else:
            out = np.full(n_groups, -np.inf)
            np.maximum.at(out, group_ids, values.astype(np.float64))
        if np.issubdtype(values.dtype, np.integer):
            finite = np.isfinite(out)
            result = np.zeros(n_groups, dtype=values.dtype)
            result[finite] = out[finite].astype(values.dtype)
            return result
        return out
