"""Serializable scan predicates and partial aggregates for push-down.

The service's shard scan jobs (and the process-executor workers behind
them) cannot run arbitrary Python filters: whatever is pushed below the
scan boundary must travel over a pipe to a spawned worker and produce the
*same bytes* wherever it runs. This module is that closed vocabulary:

* :class:`Expr` — a small predicate tree (column-vs-constant comparisons,
  ``between`` / ``isin`` / the LIKE family from
  :mod:`repro.engine.functions`, combined with and/or/not) that evaluates
  to a boolean mask over one result block and round-trips through a
  JSON-able payload (:meth:`Expr.to_payload` / :func:`expr_from_payload`).
* :class:`AggSpec` — a decomposable aggregate (sum/count/min/max, avg as
  sum+count) with optional group-by keys. Each scan job folds its blocks
  into one deterministic *partial* block (:class:`PartialAggregator`);
  the cursor merges partials from all shards and finalizes with the
  exact dtype and group-ordering semantics of
  :meth:`repro.engine.relation.GroupBy.agg`, so a pushed aggregate is
  indistinguishable from central evaluation.
* :func:`pushdown_stream` — the single evaluation wrapper both the
  in-thread job runner and the worker process apply to a raw
  ``scan_pdt_blocks`` stream. One definition, so the thread leg, the
  process leg, and every crash-redispatch replay produce identical block
  sequences (the skip-based re-dispatch contract depends on this).

Correctness of the partial merge: every supported aggregate is a
commutative monoid over per-group accumulators (sum/count add, min/max
compare, avg carries its sum and count separately), group keys partition
rows disjointly across shard jobs under one pin, and the final merge
sorts groups by key exactly like ``np.unique`` orders composite codes —
so merge(partials(blocks)) == agg(concat(blocks)) row for row.
"""

from __future__ import annotations

import numpy as np

from . import functions as fn
from .relation import EngineError, _combined_codes

#: Leaf predicate ops a worker may be asked to evaluate. A payload
#: naming anything else is rejected with :class:`PushdownUnsupported`
#: (the router then falls back to a byte-identical local pass).
LEAF_OPS = frozenset({
    "eq", "ne", "lt", "le", "gt", "ge", "between", "isin",
    "like", "starts_with", "ends_with", "contains",
})
COMBINATOR_OPS = frozenset({"and", "or", "not"})
SUPPORTED_OPS = LEAF_OPS | COMBINATOR_OPS

AGG_FUNCS = ("sum", "count", "avg", "min", "max")


class PushdownUnsupported(ValueError):
    """A payload names an op/aggregate outside the supported vocabulary."""


def _pyval(value):
    """Plain-Python scalar (numpy scalars don't belong in payloads)."""
    if isinstance(value, np.generic):
        return value.item()
    return value


class Expr:
    """One node of a pushed-down predicate tree. Immutable; build with
    the module-level constructors (``eq``, ``between``, ``and_``, ...)."""

    __slots__ = ("op", "column", "value", "children")

    def __init__(self, op, column=None, value=None, children=()):
        if op in COMBINATOR_OPS:
            if not children or (op == "not" and len(children) != 1):
                raise EngineError(f"{op!r} needs child expressions")
        elif op in LEAF_OPS:
            if not isinstance(column, str):
                raise EngineError(f"{op!r} needs a column name")
        else:
            raise PushdownUnsupported(f"unsupported predicate op {op!r}")
        self.op = op
        self.column = column
        self.value = value
        self.children = tuple(children)

    # -- evaluation --------------------------------------------------------

    def mask(self, arrays: dict) -> np.ndarray:
        """Boolean qualifying mask over one block's column arrays."""
        op = self.op
        if op == "and":
            out = self.children[0].mask(arrays)
            for child in self.children[1:]:
                out = out & child.mask(arrays)
            return out
        if op == "or":
            out = self.children[0].mask(arrays)
            for child in self.children[1:]:
                out = out | child.mask(arrays)
            return out
        if op == "not":
            return ~self.children[0].mask(arrays)
        arr = arrays[self.column]
        value = self.value
        if op == "eq":
            result = arr == value
        elif op == "ne":
            result = arr != value
        elif op == "lt":
            result = arr < value
        elif op == "le":
            result = arr <= value
        elif op == "gt":
            result = arr > value
        elif op == "ge":
            result = arr >= value
        elif op == "between":
            result = fn.between(arr, value[0], value[1])
        elif op == "isin":
            result = fn.isin(arr, value)
        elif op == "like":
            result = fn.like(arr, value)
        elif op == "starts_with":
            result = fn.starts_with(arr, value)
        elif op == "ends_with":
            result = fn.ends_with(arr, value)
        else:  # contains
            result = fn.contains(arr, value)
        return np.asarray(result, dtype=bool)

    # -- introspection -----------------------------------------------------

    def columns(self) -> set:
        """Every column the predicate reads (must be in the scan set)."""
        if self.op in COMBINATOR_OPS:
            out: set = set()
            for child in self.children:
                out |= child.columns()
            return out
        return {self.column}

    def key(self) -> tuple:
        """Hashable canonical form — two predicates with equal keys
        evaluate identically (job share-key component)."""
        if self.op in COMBINATOR_OPS:
            return (self.op, tuple(c.key() for c in self.children))
        return (self.op, self.column, self.value)

    def sk_bounds(self, sort_key) -> tuple:
        """Conservative inclusive ``(low, high)`` prefix bounds on the
        leading sort-key column implied by this predicate, for router and
        sparse-index pruning. A *superset* of the qualifying range is
        always safe: the full predicate is re-applied in the job (so a
        strict ``gt`` may return the inclusive bound). ``(None, None)``
        means no pruning information."""
        lead = sort_key[0] if sort_key else None
        if lead is None:
            return None, None
        return self._bounds(lead)

    def _bounds(self, lead: str) -> tuple:
        if self.op == "and":
            low = high = None
            for child in self.children:
                clow, chigh = child._bounds(lead)
                if clow is not None:
                    low = clow if low is None else max(low, clow)
                if chigh is not None:
                    high = chigh if high is None else min(high, chigh)
            return low, high
        if self.op == "or":
            # The union's hull — usable only when *every* branch is
            # bounded on that side (an unbounded branch admits anything).
            lows, highs = zip(*(c._bounds(lead) for c in self.children))
            low = (min(lows) if all(v is not None for v in lows)
                   else None)
            high = (max(highs) if all(v is not None for v in highs)
                    else None)
            return low, high
        if self.op in COMBINATOR_OPS or self.column != lead:
            return None, None
        if self.op == "eq":
            return (self.value,), (self.value,)
        if self.op in ("ge", "gt"):
            return (self.value,), None
        if self.op in ("le", "lt"):
            return None, (self.value,)
        if self.op == "between":
            return (self.value[0],), (self.value[1],)
        if self.op == "isin" and self.value:
            return (min(self.value),), (max(self.value),)
        return None, None

    # -- serialization -----------------------------------------------------

    def to_payload(self):
        """JSON-able nested-list form for the worker pipe."""
        if self.op == "not":
            return [self.op, self.children[0].to_payload()]
        if self.op in COMBINATOR_OPS:
            return [self.op, [c.to_payload() for c in self.children]]
        value = self.value
        if isinstance(value, tuple):
            value = list(value)
        return [self.op, self.column, value]

    def __repr__(self) -> str:
        if self.op in COMBINATOR_OPS:
            inner = ", ".join(repr(c) for c in self.children)
            return f"{self.op}({inner})"
        return f"{self.op}({self.column!r}, {self.value!r})"

    def __eq__(self, other) -> bool:
        return isinstance(other, Expr) and self.key() == other.key()

    def __hash__(self) -> int:
        return hash(self.key())


def expr_from_payload(payload) -> Expr:
    """Inverse of :meth:`Expr.to_payload`; raises
    :class:`PushdownUnsupported` on any op outside the vocabulary (the
    worker's version-skew guard)."""
    if not isinstance(payload, (list, tuple)) or not payload:
        raise PushdownUnsupported(f"malformed predicate payload {payload!r}")
    op = payload[0]
    if op == "not":
        return Expr(op, children=(expr_from_payload(payload[1]),))
    if op in COMBINATOR_OPS:
        return Expr(op, children=tuple(
            expr_from_payload(p) for p in payload[1]))
    if op not in LEAF_OPS:
        raise PushdownUnsupported(f"unsupported predicate op {op!r}")
    _op, column, value = payload
    if op in ("between", "isin") and isinstance(value, list):
        value = tuple(value)
    return Expr(op, column, value)


# -- predicate constructors ------------------------------------------------

def eq(column: str, value) -> Expr:
    return Expr("eq", column, _pyval(value))


def ne(column: str, value) -> Expr:
    return Expr("ne", column, _pyval(value))


def lt(column: str, value) -> Expr:
    return Expr("lt", column, _pyval(value))


def le(column: str, value) -> Expr:
    return Expr("le", column, _pyval(value))


def gt(column: str, value) -> Expr:
    return Expr("gt", column, _pyval(value))


def ge(column: str, value) -> Expr:
    return Expr("ge", column, _pyval(value))


def between(column: str, low, high) -> Expr:
    """Inclusive range, like :func:`repro.engine.functions.between`."""
    return Expr("between", column, (_pyval(low), _pyval(high)))


def isin(column: str, values) -> Expr:
    return Expr("isin", column, tuple(sorted(_pyval(v) for v in values)))


def like(column: str, pattern: str) -> Expr:
    return Expr("like", column, str(pattern))


def starts_with(column: str, prefix: str) -> Expr:
    return Expr("starts_with", column, str(prefix))


def ends_with(column: str, suffix: str) -> Expr:
    return Expr("ends_with", column, str(suffix))


def contains(column: str, needle: str) -> Expr:
    return Expr("contains", column, str(needle))


def and_(*exprs: Expr) -> Expr:
    return exprs[0] if len(exprs) == 1 else Expr("and", children=exprs)


def or_(*exprs: Expr) -> Expr:
    return exprs[0] if len(exprs) == 1 else Expr("or", children=exprs)


def not_(expr: Expr) -> Expr:
    return Expr("not", children=(expr,))


# -- partial aggregates ----------------------------------------------------

class AggSpec:
    """A decomposable aggregate: ``AggSpec(("cat",), {"total": ("v",
    "sum"), "n": ("*", "count")})`` — same spec shape as
    :meth:`repro.engine.relation.GroupBy.agg`. ``avg`` decomposes into
    sum+count partials; ``count_distinct`` is *not* decomposable and is
    rejected. ``dtypes`` (column -> numpy dtype str) pins the partial and
    final array dtypes so even empty shards produce deterministic blocks
    — :meth:`bind` fills it from a schema at plan time."""

    __slots__ = ("group_by", "aggs", "dtypes")

    def __init__(self, group_by=(), aggs=None, dtypes=None):
        self.group_by = tuple(group_by)
        items = []
        for name, (col, func) in dict(aggs or {}).items():
            if func not in AGG_FUNCS:
                raise PushdownUnsupported(
                    f"aggregate {func!r} cannot be pushed down")
            if col == "*" and func != "count":
                raise EngineError(f"'*' only aggregates with count, "
                                  f"not {func!r}")
            items.append((str(name), str(col), func))
        if not items:
            raise EngineError("AggSpec needs at least one aggregate")
        self.aggs = tuple(items)
        self.dtypes = dict(dtypes or {})

    def inputs(self) -> list:
        """Columns the aggregation reads (scan-set requirement)."""
        cols = list(self.group_by)
        cols += [col for _n, col, _f in self.aggs if col != "*"]
        return list(dict.fromkeys(cols))

    def output_columns(self) -> tuple:
        """The result relation's columns: keys, then aggregate names."""
        return self.group_by + tuple(name for name, _c, _f in self.aggs)

    def partials(self) -> list:
        """Partial-column descriptors ``(pname, kind, src_col)``; avg
        expands into its sum and count carriers."""
        out = []
        for name, col, func in self.aggs:
            if func == "avg":
                out.append((f"{name}::sum", "sum", col))
                out.append((f"{name}::count", "count", col))
            else:
                out.append((name, func, col))
        return out

    def key(self) -> tuple:
        """Share-key component: equal keys aggregate identically."""
        return ("agg", self.group_by, self.aggs)

    def bind(self, schema) -> "AggSpec":
        """Copy with dtypes pinned from ``schema`` (and columns
        validated)."""
        dtypes = {}
        for col in set(self.inputs()) | set(self.group_by):
            dtypes[col] = np.dtype(
                schema.dtype_of(col).numpy_dtype).str
        return AggSpec(self.group_by,
                       {n: (c, f) for n, c, f in self.aggs}, dtypes)

    def aggregator(self) -> "PartialAggregator":
        return PartialAggregator(self)

    def to_payload(self) -> dict:
        return {"group_by": list(self.group_by),
                "aggs": [[n, c, f] for n, c, f in self.aggs],
                "dtypes": dict(self.dtypes)}

    def __eq__(self, other) -> bool:
        return isinstance(other, AggSpec) and self.key() == other.key()

    def __hash__(self) -> int:
        return hash(self.key())

    def __repr__(self) -> str:
        aggs = ", ".join(f"{n}={f}({c})" for n, c, f in self.aggs)
        return f"AggSpec(group_by={self.group_by}, {aggs})"


def agg_from_payload(payload: dict) -> AggSpec:
    """Inverse of :meth:`AggSpec.to_payload`, with the same vocabulary
    guard as :func:`expr_from_payload`."""
    try:
        aggs = {n: (c, f) for n, c, f in payload["aggs"]}
        return AggSpec(tuple(payload["group_by"]), aggs,
                       payload.get("dtypes"))
    except (KeyError, TypeError, ValueError) as exc:
        if isinstance(exc, PushdownUnsupported):
            raise
        raise PushdownUnsupported(
            f"malformed aggregate payload: {exc}") from None


def _py_key(cols, position) -> tuple:
    return tuple(_pyval(col[position]) for col in cols)


class PartialAggregator:
    """Streaming accumulator for one :class:`AggSpec`.

    ``add_block`` folds raw (already filtered) blocks; ``merge`` folds
    another aggregator's partial block; ``partial_arrays`` emits this
    side's deterministic partial block (groups sorted by key);
    ``finalize`` produces the final output arrays with
    ``GroupBy.agg``-identical dtypes, ordering, and empty-input shape.
    """

    def __init__(self, spec: AggSpec):
        self.spec = spec
        self._parts = spec.partials()
        # group key tuple -> accumulator list aligned with self._parts
        self._groups: dict[tuple, list] = {}

    # -- accumulation ------------------------------------------------------

    def _fresh(self) -> list:
        return [0 if kind in ("sum", "count") else None
                for _p, kind, _s in self._parts]

    def _combine(self, state: list, index: int, kind: str, value) -> None:
        if kind in ("sum", "count"):
            state[index] += value
        elif state[index] is None:
            state[index] = value
        elif kind == "min":
            if value < state[index]:
                state[index] = value
        elif value > state[index]:
            state[index] = value

    def add_block(self, arrays: dict) -> None:
        """Fold one raw block (post-filter) into the running groups."""
        if not arrays:
            return
        n = len(next(iter(arrays.values())))
        if n == 0:
            return
        group_cols = [np.asarray(arrays[k]) for k in self.spec.group_by]
        if group_cols:
            codes = _combined_codes(group_cols)
            _uniq, rep, inv = np.unique(
                codes, return_index=True, return_inverse=True)
            n_groups = len(rep)
        else:
            inv = np.zeros(n, dtype=np.int64)
            rep = np.zeros(1, dtype=np.int64)
            n_groups = 1
        keys = [_py_key(group_cols, r) for r in rep]
        for index, (_pname, kind, src) in enumerate(self._parts):
            per_group = self._block_partials(arrays, inv, n_groups,
                                             kind, src)
            for g, key in enumerate(keys):
                state = self._groups.get(key)
                if state is None:
                    state = self._groups[key] = self._fresh()
                self._combine(state, index, kind, _pyval(per_group[g]))

    @staticmethod
    def _block_partials(arrays, inv, n_groups, kind, src):
        """Vectorized per-block, per-group accumulation of one partial."""
        if kind == "count":
            return np.bincount(inv, minlength=n_groups)
        values = np.asarray(arrays[src])
        if kind == "sum":
            if values.dtype == object:
                raise EngineError("sum over non-numeric column")
            if np.issubdtype(values.dtype, np.integer) \
                    or values.dtype == bool:
                acc = np.zeros(n_groups, dtype=np.int64)
                np.add.at(acc, inv, values.astype(np.int64))
                return acc
            return np.bincount(inv, weights=values.astype(np.float64),
                               minlength=n_groups)
        # min / max
        if values.dtype == object:
            out = [None] * n_groups
            better = (lambda a, b: a < b) if kind == "min" \
                else (lambda a, b: a > b)
            for gid, val in zip(inv, values):
                if out[gid] is None or better(val, out[gid]):
                    out[gid] = val
            return out
        if np.issubdtype(values.dtype, np.integer):
            info = np.iinfo(values.dtype)
            fill = info.max if kind == "min" else info.min
            acc = np.full(n_groups, fill, dtype=values.dtype)
        else:
            fill = np.inf if kind == "min" else -np.inf
            acc = np.full(n_groups, fill, dtype=np.float64)
            values = values.astype(np.float64)
        if kind == "min":
            np.minimum.at(acc, inv, values)
        else:
            np.maximum.at(acc, inv, values)
        return acc

    def merge(self, arrays: dict) -> None:
        """Fold one *partial* block (another aggregator's
        ``partial_arrays`` output) into the running groups."""
        if not arrays:
            return
        group_cols = [arrays[k] for k in self.spec.group_by]
        part_cols = [arrays[p] for p, _k, _s in self._parts]
        n = len(part_cols[0]) if part_cols else 0
        for i in range(n):
            key = _py_key(group_cols, i)
            state = self._groups.get(key)
            if state is None:
                state = self._groups[key] = self._fresh()
            for index, (_p, kind, _s) in enumerate(self._parts):
                self._combine(state, index, kind,
                              _pyval(part_cols[index][i]))

    # -- output ------------------------------------------------------------

    def _src_dtype(self, col: str):
        dt = self.spec.dtypes.get(col)
        return None if dt is None else np.dtype(dt)

    def _keyed_column(self, values, dtype) -> np.ndarray:
        if dtype is None:
            dtype = np.asarray(values).dtype if values else np.float64
        if np.dtype(dtype) == object:
            out = np.empty(len(values), dtype=object)
            out[:] = values
            return out
        return np.array(values, dtype=dtype)

    def _partial_dtype(self, kind: str, src: str):
        if kind == "count":
            return np.dtype(np.int64)
        dt = self._src_dtype(src)
        if kind == "sum":
            if dt is not None and (np.issubdtype(dt, np.integer)
                                   or dt == bool):
                return np.dtype(np.int64)
            return np.dtype(np.float64)
        if dt is not None and np.issubdtype(dt, np.floating):
            return np.dtype(np.float64)
        return dt  # min/max keep the source dtype (None -> infer)

    def partial_arrays(self) -> dict:
        """This side's partial block: group columns + partial columns,
        groups sorted ascending by key — deterministic for any input
        block order, which the crash-redispatch skip contract needs."""
        keys = sorted(self._groups)
        out: dict = {}
        for i, col in enumerate(self.spec.group_by):
            out[col] = self._keyed_column(
                [key[i] for key in keys], self._src_dtype(col))
        for index, (pname, kind, src) in enumerate(self._parts):
            vals = [self._groups[key][index] for key in keys]
            out[pname] = self._keyed_column(
                vals, self._partial_dtype(kind, src))
        return out

    def finalize(self) -> dict:
        """Final output arrays, exactly as ``GroupBy.agg`` would produce
        them from the concatenated input — including its empty-input
        quirks (a single zero row for global aggregates, empty float64
        columns for grouped ones) and int-preserving min/max dtypes."""
        spec = self.spec
        keys = sorted(self._groups)
        out: dict = {}
        if not keys:
            if spec.group_by:
                for col in spec.group_by:
                    dt = self._src_dtype(col)
                    out[col] = self._keyed_column([], dt)
                for name, _col, _func in spec.aggs:
                    out[name] = np.empty(0, dtype=np.float64)
            else:
                for name, _col, func in spec.aggs:
                    out[name] = (np.zeros(1, dtype=np.int64)
                                 if func == "count"
                                 else np.zeros(1, dtype=np.float64))
            return out
        for i, col in enumerate(spec.group_by):
            out[col] = self._keyed_column(
                [key[i] for key in keys], self._src_dtype(col))
        part_index = {p: j for j, (p, _k, _s) in enumerate(self._parts)}

        def column_of(pname, kind, src):
            vals = [self._groups[key][part_index[pname]] for key in keys]
            return self._keyed_column(vals, self._partial_dtype(kind, src))

        for name, col, func in spec.aggs:
            if func == "avg":
                sums = column_of(f"{name}::sum", "sum", col)
                counts = column_of(f"{name}::count", "count", col)
                out[name] = sums / np.maximum(counts, 1)
            else:
                out[name] = column_of(name, func, col)
        return out


# -- the shared evaluation wrapper -----------------------------------------

def pushdown_stream(stream, where: Expr | None = None,
                    agg: AggSpec | None = None, key_cols=(),
                    low=None, high=None, counter: dict | None = None):
    """Wrap a raw block stream with pushed-down evaluation.

    Filters each ``(rid, arrays)`` block with ``where`` (and, for
    aggregate jobs, with the inclusive ``[low, high]`` sort-key bounds
    over ``key_cols`` — aggregation consumes rows before the cursor's
    key trim could run, so the job applies the full predicate itself).
    Filtered blocks are re-numbered densely; with ``agg`` the stream
    reduces to exactly one partial block (possibly zero rows).

    ``counter`` (mutable dict) accumulates ``rows_in`` (scanned) and
    ``rows_out`` (streamed) — the push-down metrics surface.
    """
    aggregator = agg.aggregator() if agg is not None else None
    trim = agg is not None and (low is not None or high is not None)
    out_rid = 0
    for _rid, arrays in stream:
        n = len(next(iter(arrays.values()))) if arrays else 0
        if counter is not None:
            counter["rows_in"] += n
        mask = None
        if trim:
            key_arrays = [arrays[c] for c in key_cols]
            if low is not None:
                mask = fn.lex_ge(key_arrays, low)
            if high is not None:
                hi_mask = fn.lex_le(key_arrays, high)
                mask = hi_mask if mask is None else mask & hi_mask
        if where is not None:
            where_mask = where.mask(arrays)
            mask = where_mask if mask is None else mask & where_mask
        if mask is not None and not mask.all():
            arrays = {c: a[mask] for c, a in arrays.items()}
            n = int(mask.sum())
        if aggregator is not None:
            if n:
                aggregator.add_block(arrays)
            continue
        if n:
            if counter is not None:
                counter["rows_out"] += n
            yield out_rid, arrays
            out_rid += n
    if aggregator is not None:
        block = aggregator.partial_arrays()
        if counter is not None and block:
            counter["rows_out"] += len(next(iter(block.values())))
        yield 0, block
