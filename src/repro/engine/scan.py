"""Scan operators: bridging stored tables + delta structures to Relations.

Three scan modes mirror the paper's three TPC-H configurations:

* :func:`scan_clean` — no-updates run: stable table only.
* :func:`scan_pdt` — positional merge through a stack of PDT layers; never
  reads sort-key columns unless the query asks for them.
* :func:`scan_vdt` — value-based merge; always reads sort-key columns.

All three are *block-pipelined*: stable storage yields decoded blocks,
each PDT layer splices its updates in block-at-a-time (see
:class:`repro.core.merge.BlockMerger`), and only the terminal
``Relation.from_batches`` materializes. Streaming consumers that want the
merged image without materialization use :func:`scan_pdt_blocks`, which
additionally normalizes output to fixed-size blocks.

Each scan records the wall-clock *scan time* (data access + merging) in an
optional :class:`ScanTimer`, which Figure 19's harness uses to split query
time into scan vs processing components.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..core.merge import MERGE_BLOCK_ROWS, reblock
from ..core.stack import merge_scan_layers
from ..vdt.merge import vdt_merge_scan
from .relation import Relation


@dataclass
class ScanTimer:
    """Accumulates time spent inside scan+merge per query."""

    seconds: float = 0.0
    scans: int = 0
    by_table: dict = field(default_factory=dict)

    def add(self, table_name: str, elapsed: float) -> None:
        self.seconds += elapsed
        self.scans += 1
        self.by_table[table_name] = self.by_table.get(table_name, 0.0) \
            + elapsed

    def reset(self) -> None:
        self.seconds = 0.0
        self.scans = 0
        self.by_table.clear()


def scan_clean(table, columns=None, timer: ScanTimer | None = None,
               batch_rows: int = 4096) -> Relation:
    """Materialize a stable table scan with no update merging."""
    columns = list(columns) if columns is not None \
        else list(table.schema.column_names)
    start = time.perf_counter()
    rel = Relation.from_batches(
        columns, table.scan(columns=columns, batch_rows=batch_rows)
    )
    if timer is not None:
        timer.add(table.name, time.perf_counter() - start)
    return rel


def scan_pdt(table, layers, columns=None, timer: ScanTimer | None = None,
             batch_rows: int = 4096) -> Relation:
    """Materialize a positional MergeScan through PDT ``layers``."""
    columns = list(columns) if columns is not None \
        else list(table.schema.column_names)
    start = time.perf_counter()
    rel = Relation.from_batches(
        columns,
        merge_scan_layers(table, layers, columns=columns,
                          batch_rows=batch_rows),
    )
    if timer is not None:
        timer.add(table.name, time.perf_counter() - start)
    return rel


def scan_pdt_blocks(table, layers, columns=None, start: int = 0,
                    stop: int | None = None,
                    block_rows: int = MERGE_BLOCK_ROWS):
    """Stream the merged table image as fixed-size blocks.

    The pipelined form of :func:`scan_pdt`: yields
    ``(first_rid, {column: ndarray})`` blocks of exactly ``block_rows``
    rows (the last may be shorter) without ever materializing the full
    relation — the shape operator pipelines and shard fan-out consume.
    Merged block sizes drift with the local insert/delete balance, so the
    layered stream is re-normalized with :func:`repro.core.merge.reblock`;
    untouched full blocks still pass through without copying.
    """
    if columns is None:
        columns = list(table.schema.column_names)
    stream = merge_scan_layers(table, layers, columns=columns, start=start,
                               stop=stop, batch_rows=block_rows)
    return reblock(stream, block_rows=block_rows)


def rebase_block_streams(parts):
    """Concatenate per-partition block streams into one global RID domain.

    ``parts`` is an ordered iterable of ``(first_rid, {column: ndarray})``
    block streams, each over its partition's *local* RID domain (starting
    at 0). Blocks are yielded in partition order with local RIDs rebased:
    partition ``i``'s offset is the total row count the preceding
    partitions produced, measured from their actual output — so the
    offsets stay exact under any per-partition insert/delete balance.
    Shard fan-out and the query service's streaming cursors share this as
    the single definition of cross-shard RID order.
    """
    offset = 0
    for part in parts:
        produced = 0
        for first_rid, arrays in part:
            yield offset + first_rid, arrays
            if arrays:
                produced = first_rid + len(next(iter(arrays.values())))
        offset += produced


def fanout_scan_blocks(sources, executor=None):
    """Fan a scan out over partitions and re-concatenate in key order.

    ``sources`` is an ordered list of zero-argument callables, each
    returning a ``(first_rid, {column: ndarray})`` block stream over one
    partition's *local* RID domain (starting at 0). Partitions are scanned
    — in parallel when an ``executor`` (``concurrent.futures``-style) is
    given, otherwise sequentially — and their blocks are re-concatenated
    by :func:`rebase_block_streams`.

    With an executor every partition's stream is materialized inside its
    worker; block *contents* are untouched either way (pass-through arrays
    stay pass-through).

    An executor exposing ``submit_stream`` (the multiprocess
    :class:`repro.exec.router.ExecutorRouter`) gets the source object
    itself, so it can ship the partition to a worker process when the
    source carries remote identity (see :class:`repro.exec.ScanSource`)
    instead of running the thunk on a thread.
    """
    if executor is not None:
        submit_stream = getattr(executor, "submit_stream", None)
        if submit_stream is not None:
            futures = [submit_stream(s) for s in sources]
        else:
            futures = [executor.submit(lambda s=s: list(s()))
                       for s in sources]
        parts = (future.result() for future in futures)
    else:
        parts = (source() for source in sources)
    yield from rebase_block_streams(parts)


def scan_vdt(table, vdt, columns=None, timer: ScanTimer | None = None,
             batch_rows: int = 4096) -> Relation:
    """Materialize a value-based merge scan (reads SK columns always)."""
    columns = list(columns) if columns is not None \
        else list(table.schema.column_names)
    start = time.perf_counter()
    rel = Relation.from_batches(
        columns,
        vdt_merge_scan(table, vdt, columns=columns, batch_rows=batch_rows),
    )
    if timer is not None:
        timer.add(table.name, time.perf_counter() - start)
    return rel
