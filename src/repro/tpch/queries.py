"""All 22 TPC-H queries as physical plans over the relation engine.

Each query takes a *source* (see :mod:`repro.tpch.sources`) exposing
``scan(table, columns, where=None)`` and returns a
:class:`~repro.engine.Relation`. Queries request exactly the columns
they use — the property that lets positional merging skip sort-key I/O.
Parameters default to the TPC-H validation values; dates are day numbers
(see :mod:`repro.engine.functions`).

Scans that feed a filter also pass the decomposable part of that filter
as a ``where=`` hint (an :class:`~repro.engine.expr.Expr`). A source may
push it into the scan (:class:`~repro.tpch.sources.PdtSource` routes it
through shard pruning + in-scan filtering) or ignore it entirely — every
query still applies its full predicate centrally, so the hint can only
reduce rows scanned, never change the answer. Column-vs-column terms
(e.g. ``l_commitdate < l_receiptdate``) are outside the push-down
vocabulary and stay central-only.

These are physical plans, not SQL: joins are ordered by hand the way a
reasonable optimizer would on TPC-H (selective filters first, dimension
tables on the build side).
"""

from __future__ import annotations

import numpy as np

from ..engine import expr as ex
from ..engine import functions as fn
from ..engine.relation import Relation

D = fn.days


def q01(src, delta_days: int = 90) -> Relation:
    """Pricing summary report."""
    cutoff = fn.add_days(D(1998, 12, 1), -delta_days)
    li = src.scan(
        "lineitem",
        ["l_returnflag", "l_linestatus", "l_quantity", "l_extendedprice",
         "l_discount", "l_tax", "l_shipdate"],
        where=ex.le("l_shipdate", cutoff),
    )
    li = li.filter(li["l_shipdate"] <= cutoff)
    disc = li["l_extendedprice"] * (1 - li["l_discount"])
    li = li.with_columns(
        disc_price=disc, charge=disc * (1 + li["l_tax"])
    )
    out = li.group_by("l_returnflag", "l_linestatus").agg(
        sum_qty=("l_quantity", "sum"),
        sum_base_price=("l_extendedprice", "sum"),
        sum_disc_price=("disc_price", "sum"),
        sum_charge=("charge", "sum"),
        avg_qty=("l_quantity", "avg"),
        avg_price=("l_extendedprice", "avg"),
        avg_disc=("l_discount", "avg"),
        count_order=("*", "count"),
    )
    return out.order_by("l_returnflag", "l_linestatus")


def q02(src, size: int = 15, type_suffix: str = "BRASS",
        region: str = "EUROPE") -> Relation:
    """Minimum cost supplier."""
    part = src.scan("part", ["p_partkey", "p_mfgr", "p_size", "p_type"])
    part = part.filter(
        (part["p_size"] == size) & fn.ends_with(part["p_type"], type_suffix)
    )
    ps = src.scan("partsupp", ["ps_partkey", "ps_suppkey", "ps_supplycost"])
    supp = src.scan(
        "supplier",
        ["s_suppkey", "s_name", "s_address", "s_nationkey", "s_phone",
         "s_acctbal", "s_comment"],
    )
    nation = src.scan("nation", ["n_nationkey", "n_name", "n_regionkey"])
    reg = src.scan("region", ["r_regionkey", "r_name"])
    reg = reg.filter(reg["r_name"] == region)
    nation = nation.join(reg, left_on="n_regionkey", right_on="r_regionkey")
    supp = supp.join(nation, left_on="s_nationkey", right_on="n_nationkey")
    ps = ps.join(supp, left_on="ps_suppkey", right_on="s_suppkey")
    joined = part.join(ps, left_on="p_partkey", right_on="ps_partkey")
    if joined.num_rows == 0:
        return joined
    mins = joined.group_by("p_partkey").agg(
        min_cost=("ps_supplycost", "min")
    )
    joined = joined.join(mins, left_on="p_partkey")
    joined = joined.filter(
        joined["ps_supplycost"] == joined["min_cost"]
    )
    out = joined.select(
        "s_acctbal", "s_name", "n_name", "p_partkey", "p_mfgr", "s_address",
        "s_phone", "s_comment",
    )
    return out.order_by(
        ("s_acctbal", "desc"), ("n_name", "asc"), ("s_name", "asc"),
        ("p_partkey", "asc"),
    ).limit(100)


def q03(src, segment: str = "BUILDING", date: int | None = None) -> Relation:
    """Shipping priority."""
    date = D(1995, 3, 15) if date is None else date
    cust = src.scan("customer", ["c_custkey", "c_mktsegment"],
                    where=ex.eq("c_mktsegment", segment))
    cust = cust.filter(cust["c_mktsegment"] == segment)
    orders = src.scan(
        "orders",
        ["o_orderkey", "o_custkey", "o_orderdate", "o_shippriority"],
        where=ex.lt("o_orderdate", date),
    )
    orders = orders.filter(orders["o_orderdate"] < date)
    orders = orders.join(cust, left_on="o_custkey", right_on="c_custkey",
                         how="semi")
    li = src.scan(
        "lineitem",
        ["l_orderkey", "l_extendedprice", "l_discount", "l_shipdate"],
        where=ex.gt("l_shipdate", date),
    )
    li = li.filter(li["l_shipdate"] > date)
    joined = li.join(orders, left_on="l_orderkey", right_on="o_orderkey")
    joined = joined.with_columns(
        revenue=joined["l_extendedprice"] * (1 - joined["l_discount"])
    )
    out = joined.group_by(
        "l_orderkey", "o_orderdate", "o_shippriority"
    ).agg(revenue=("revenue", "sum"))
    return out.order_by(
        ("revenue", "desc"), ("o_orderdate", "asc"), ("l_orderkey", "asc")
    ).limit(10)


def q04(src, date: int | None = None) -> Relation:
    """Order priority checking."""
    date = D(1993, 7, 1) if date is None else date
    orders = src.scan(
        "orders", ["o_orderkey", "o_orderdate", "o_orderpriority"],
        where=ex.and_(ex.ge("o_orderdate", date),
                      ex.lt("o_orderdate", fn.add_months(date, 3))),
    )
    orders = orders.filter(
        (orders["o_orderdate"] >= date)
        & (orders["o_orderdate"] < fn.add_months(date, 3))
    )
    li = src.scan("lineitem", ["l_orderkey", "l_commitdate",
                               "l_receiptdate"])
    late = li.filter(li["l_commitdate"] < li["l_receiptdate"])
    orders = orders.join(late, left_on="o_orderkey", right_on="l_orderkey",
                         how="semi")
    out = orders.group_by("o_orderpriority").agg(
        order_count=("*", "count")
    )
    return out.order_by("o_orderpriority")


def q05(src, region: str = "ASIA", date: int | None = None) -> Relation:
    """Local supplier volume."""
    date = D(1994, 1, 1) if date is None else date
    reg = src.scan("region", ["r_regionkey", "r_name"])
    reg = reg.filter(reg["r_name"] == region)
    nation = src.scan("nation", ["n_nationkey", "n_name", "n_regionkey"])
    nation = nation.join(reg, left_on="n_regionkey", right_on="r_regionkey")
    supp = src.scan("supplier", ["s_suppkey", "s_nationkey"])
    supp = supp.join(nation, left_on="s_nationkey", right_on="n_nationkey")
    cust = src.scan("customer", ["c_custkey", "c_nationkey"])
    orders = src.scan(
        "orders", ["o_orderkey", "o_custkey", "o_orderdate"],
        where=ex.and_(ex.ge("o_orderdate", date),
                      ex.lt("o_orderdate", fn.add_years(date, 1))),
    )
    orders = orders.filter(
        (orders["o_orderdate"] >= date)
        & (orders["o_orderdate"] < fn.add_years(date, 1))
    )
    orders = orders.join(cust, left_on="o_custkey", right_on="c_custkey")
    li = src.scan(
        "lineitem",
        ["l_orderkey", "l_suppkey", "l_extendedprice", "l_discount"],
    )
    joined = li.join(orders, left_on="l_orderkey", right_on="o_orderkey")
    joined = joined.join(supp, left_on="l_suppkey", right_on="s_suppkey")
    # Local: the customer's nation is the supplier's nation.
    joined = joined.filter(joined["c_nationkey"] == joined["s_nationkey"])
    joined = joined.with_columns(
        revenue=joined["l_extendedprice"] * (1 - joined["l_discount"])
    )
    out = joined.group_by("n_name").agg(revenue=("revenue", "sum"))
    return out.order_by(("revenue", "desc"))


def q06(src, date: int | None = None, discount: float = 0.06,
        quantity: int = 24) -> Relation:
    """Forecasting revenue change."""
    date = D(1994, 1, 1) if date is None else date
    li = src.scan(
        "lineitem",
        ["l_shipdate", "l_discount", "l_quantity", "l_extendedprice"],
        where=ex.and_(
            ex.ge("l_shipdate", date),
            ex.lt("l_shipdate", fn.add_years(date, 1)),
            ex.between("l_discount", round(discount - 0.011, 2),
                       round(discount + 0.011, 2)),
            ex.lt("l_quantity", quantity),
        ),
    )
    mask = (
        (li["l_shipdate"] >= date)
        & (li["l_shipdate"] < fn.add_years(date, 1))
        & (li["l_discount"] >= round(discount - 0.011, 2))
        & (li["l_discount"] <= round(discount + 0.011, 2))
        & (li["l_quantity"] < quantity)
    )
    li = li.filter(mask)
    li = li.with_columns(revenue=li["l_extendedprice"] * li["l_discount"])
    return li.group_by().agg(revenue=("revenue", "sum"))


def q07(src, nation1: str = "FRANCE", nation2: str = "GERMANY") -> Relation:
    """Volume shipping between two nations."""
    nation = src.scan("nation", ["n_nationkey", "n_name"])
    nation = nation.filter(fn.isin(nation["n_name"], {nation1, nation2}))
    supp = src.scan("supplier", ["s_suppkey", "s_nationkey"])
    supp = supp.join(
        nation.rename(n_name="supp_nation"),
        left_on="s_nationkey", right_on="n_nationkey",
    )
    cust = src.scan("customer", ["c_custkey", "c_nationkey"])
    cust = cust.join(
        nation.rename(n_name="cust_nation"),
        left_on="c_nationkey", right_on="n_nationkey",
    )
    orders = src.scan("orders", ["o_orderkey", "o_custkey"])
    orders = orders.join(cust, left_on="o_custkey", right_on="c_custkey")
    li = src.scan(
        "lineitem",
        ["l_orderkey", "l_suppkey", "l_shipdate", "l_extendedprice",
         "l_discount"],
    )
    li = li.filter(
        (li["l_shipdate"] >= D(1995, 1, 1))
        & (li["l_shipdate"] <= D(1996, 12, 31))
    )
    joined = li.join(supp, left_on="l_suppkey", right_on="s_suppkey")
    joined = joined.join(orders, left_on="l_orderkey", right_on="o_orderkey")
    cross = (
        (joined["supp_nation"] == nation1) & (joined["cust_nation"] == nation2)
    ) | (
        (joined["supp_nation"] == nation2) & (joined["cust_nation"] == nation1)
    )
    joined = joined.filter(cross)
    joined = joined.with_columns(
        l_year=fn.year_of(joined["l_shipdate"]),
        volume=joined["l_extendedprice"] * (1 - joined["l_discount"]),
    )
    out = joined.group_by("supp_nation", "cust_nation", "l_year").agg(
        revenue=("volume", "sum")
    )
    return out.order_by("supp_nation", "cust_nation", "l_year")


def q08(src, nation: str = "BRAZIL", region: str = "AMERICA",
        ptype: str = "ECONOMY ANODIZED STEEL") -> Relation:
    """National market share."""
    part = src.scan("part", ["p_partkey", "p_type"])
    part = part.filter(part["p_type"] == ptype)
    reg = src.scan("region", ["r_regionkey", "r_name"])
    reg = reg.filter(reg["r_name"] == region)
    nations = src.scan("nation", ["n_nationkey", "n_name", "n_regionkey"])
    cust_nation = nations.join(
        reg, left_on="n_regionkey", right_on="r_regionkey"
    )
    cust = src.scan("customer", ["c_custkey", "c_nationkey"])
    cust = cust.join(
        cust_nation, left_on="c_nationkey", right_on="n_nationkey",
        how="semi",
    )
    orders = src.scan("orders", ["o_orderkey", "o_custkey", "o_orderdate"])
    orders = orders.filter(
        (orders["o_orderdate"] >= D(1995, 1, 1))
        & (orders["o_orderdate"] <= D(1996, 12, 31))
    )
    orders = orders.join(cust, left_on="o_custkey", right_on="c_custkey",
                         how="semi")
    supp = src.scan("supplier", ["s_suppkey", "s_nationkey"])
    supp = supp.join(
        nations.rename(n_name="supp_nation").select(
            "n_nationkey", "supp_nation"
        ),
        left_on="s_nationkey", right_on="n_nationkey",
    )
    li = src.scan(
        "lineitem",
        ["l_orderkey", "l_partkey", "l_suppkey", "l_extendedprice",
         "l_discount"],
    )
    joined = li.join(part, left_on="l_partkey", right_on="p_partkey",
                     how="semi")
    joined = joined.join(orders, left_on="l_orderkey", right_on="o_orderkey")
    joined = joined.join(supp, left_on="l_suppkey", right_on="s_suppkey")
    joined = joined.with_columns(
        o_year=fn.year_of(joined["o_orderdate"]),
        volume=joined["l_extendedprice"] * (1 - joined["l_discount"]),
    )
    joined = joined.with_columns(
        nation_volume=np.where(
            joined["supp_nation"] == nation, joined["volume"], 0.0
        )
    )
    out = joined.group_by("o_year").agg(
        total=("volume", "sum"), national=("nation_volume", "sum")
    )
    out = out.with_columns(
        mkt_share=out["national"] / np.maximum(out["total"], 1e-12)
    )
    return out.select("o_year", "mkt_share").order_by("o_year")


def q09(src, color: str = "green") -> Relation:
    """Product type profit measure."""
    part = src.scan("part", ["p_partkey", "p_name"])
    part = part.filter(fn.contains(part["p_name"], color))
    supp = src.scan("supplier", ["s_suppkey", "s_nationkey"])
    nations = src.scan("nation", ["n_nationkey", "n_name"])
    supp = supp.join(nations, left_on="s_nationkey", right_on="n_nationkey")
    ps = src.scan("partsupp", ["ps_partkey", "ps_suppkey", "ps_supplycost"])
    orders = src.scan("orders", ["o_orderkey", "o_orderdate"])
    li = src.scan(
        "lineitem",
        ["l_orderkey", "l_partkey", "l_suppkey", "l_quantity",
         "l_extendedprice", "l_discount"],
    )
    joined = li.join(part, left_on="l_partkey", right_on="p_partkey",
                     how="semi")
    joined = joined.join(supp, left_on="l_suppkey", right_on="s_suppkey")
    joined = joined.join(
        ps, left_on=["l_partkey", "l_suppkey"],
        right_on=["ps_partkey", "ps_suppkey"],
    )
    joined = joined.join(orders, left_on="l_orderkey", right_on="o_orderkey")
    joined = joined.with_columns(
        o_year=fn.year_of(joined["o_orderdate"]),
        amount=joined["l_extendedprice"] * (1 - joined["l_discount"])
        - joined["ps_supplycost"] * joined["l_quantity"],
    )
    out = joined.group_by("n_name", "o_year").agg(
        sum_profit=("amount", "sum")
    )
    return out.order_by(("n_name", "asc"), ("o_year", "desc"))


def q10(src, date: int | None = None) -> Relation:
    """Returned item reporting."""
    date = D(1993, 10, 1) if date is None else date
    orders = src.scan(
        "orders", ["o_orderkey", "o_custkey", "o_orderdate"],
        where=ex.and_(ex.ge("o_orderdate", date),
                      ex.lt("o_orderdate", fn.add_months(date, 3))),
    )
    orders = orders.filter(
        (orders["o_orderdate"] >= date)
        & (orders["o_orderdate"] < fn.add_months(date, 3))
    )
    li = src.scan(
        "lineitem",
        ["l_orderkey", "l_returnflag", "l_extendedprice", "l_discount"],
        where=ex.eq("l_returnflag", "R"),
    )
    li = li.filter(li["l_returnflag"] == "R")
    joined = li.join(orders, left_on="l_orderkey", right_on="o_orderkey")
    cust = src.scan(
        "customer",
        ["c_custkey", "c_name", "c_acctbal", "c_phone", "c_nationkey",
         "c_address", "c_comment"],
    )
    joined = joined.join(cust, left_on="o_custkey", right_on="c_custkey")
    nations = src.scan("nation", ["n_nationkey", "n_name"])
    joined = joined.join(nations, left_on="c_nationkey",
                         right_on="n_nationkey")
    joined = joined.with_columns(
        revenue=joined["l_extendedprice"] * (1 - joined["l_discount"])
    )
    out = joined.group_by(
        "c_custkey", "c_name", "c_acctbal", "c_phone", "n_name", "c_address",
        "c_comment",
    ).agg(revenue=("revenue", "sum"))
    return out.order_by(("revenue", "desc"), ("c_custkey", "asc")).limit(20)


def q11(src, nation: str = "GERMANY", fraction: float = 0.0001) -> Relation:
    """Important stock identification (touches no updated tables)."""
    nations = src.scan("nation", ["n_nationkey", "n_name"])
    nations = nations.filter(nations["n_name"] == nation)
    supp = src.scan("supplier", ["s_suppkey", "s_nationkey"])
    supp = supp.join(nations, left_on="s_nationkey", right_on="n_nationkey",
                     how="semi")
    ps = src.scan(
        "partsupp", ["ps_partkey", "ps_suppkey", "ps_availqty",
                     "ps_supplycost"],
    )
    ps = ps.join(supp, left_on="ps_suppkey", right_on="s_suppkey",
                 how="semi")
    ps = ps.with_columns(value=ps["ps_supplycost"] * ps["ps_availqty"])
    total = float(ps.group_by().agg(v=("value", "sum"))["v"][0])
    out = ps.group_by("ps_partkey").agg(value=("value", "sum"))
    out = out.filter(out["value"] > total * fraction)
    return out.order_by(("value", "desc"))


def q12(src, mode1: str = "MAIL", mode2: str = "SHIP",
        date: int | None = None) -> Relation:
    """Shipping modes and order priority."""
    date = D(1994, 1, 1) if date is None else date
    li = src.scan(
        "lineitem",
        ["l_orderkey", "l_shipmode", "l_commitdate", "l_receiptdate",
         "l_shipdate"],
        # Conservative subset: the column-vs-column terms stay central.
        where=ex.and_(ex.isin("l_shipmode", (mode1, mode2)),
                      ex.ge("l_receiptdate", date),
                      ex.lt("l_receiptdate", fn.add_years(date, 1))),
    )
    li = li.filter(
        fn.isin(li["l_shipmode"], {mode1, mode2})
        & (li["l_commitdate"] < li["l_receiptdate"])
        & (li["l_shipdate"] < li["l_commitdate"])
        & (li["l_receiptdate"] >= date)
        & (li["l_receiptdate"] < fn.add_years(date, 1))
    )
    orders = src.scan("orders", ["o_orderkey", "o_orderpriority"])
    joined = li.join(orders, left_on="l_orderkey", right_on="o_orderkey")
    high = fn.isin(
        joined["o_orderpriority"], {"1-URGENT", "2-HIGH"}
    ).astype(np.int64)
    joined = joined.with_columns(high_line=high, low_line=1 - high)
    out = joined.group_by("l_shipmode").agg(
        high_line_count=("high_line", "sum"),
        low_line_count=("low_line", "sum"),
    )
    return out.order_by("l_shipmode")


def q13(src, word1: str = "special", word2: str = "requests") -> Relation:
    """Customer distribution."""
    cust = src.scan("customer", ["c_custkey"])
    orders = src.scan("orders", ["o_orderkey", "o_custkey", "o_comment"])
    orders = orders.filter(
        ~fn.like(orders["o_comment"], f"%{word1}%{word2}%")
    )
    joined = cust.join(orders, left_on="c_custkey", right_on="o_custkey",
                       how="left")
    joined = joined.with_columns(
        has_order=joined["_matched"].astype(np.int64)
    )
    per_customer = joined.group_by("c_custkey").agg(
        c_count=("has_order", "sum")
    )
    out = per_customer.group_by("c_count").agg(custdist=("*", "count"))
    return out.order_by(("custdist", "desc"), ("c_count", "desc"))


def q14(src, date: int | None = None) -> Relation:
    """Promotion effect."""
    date = D(1995, 9, 1) if date is None else date
    li = src.scan(
        "lineitem",
        ["l_partkey", "l_shipdate", "l_extendedprice", "l_discount"],
        where=ex.and_(ex.ge("l_shipdate", date),
                      ex.lt("l_shipdate", fn.add_months(date, 1))),
    )
    li = li.filter(
        (li["l_shipdate"] >= date)
        & (li["l_shipdate"] < fn.add_months(date, 1))
    )
    part = src.scan("part", ["p_partkey", "p_type"])
    joined = li.join(part, left_on="l_partkey", right_on="p_partkey")
    revenue = joined["l_extendedprice"] * (1 - joined["l_discount"])
    promo = np.where(
        fn.starts_with(joined["p_type"], "PROMO"), revenue, 0.0
    )
    joined = joined.with_columns(revenue=revenue, promo=promo)
    out = joined.group_by().agg(
        promo=("promo", "sum"), total=("revenue", "sum")
    )
    return out.with_columns(
        promo_revenue=100.0 * out["promo"]
        / np.maximum(out["total"], 1e-12)
    ).select("promo_revenue")


def q15(src, date: int | None = None) -> Relation:
    """Top supplier (the revenue view, then max)."""
    date = D(1996, 1, 1) if date is None else date
    li = src.scan(
        "lineitem",
        ["l_suppkey", "l_shipdate", "l_extendedprice", "l_discount"],
        where=ex.and_(ex.ge("l_shipdate", date),
                      ex.lt("l_shipdate", fn.add_months(date, 3))),
    )
    li = li.filter(
        (li["l_shipdate"] >= date)
        & (li["l_shipdate"] < fn.add_months(date, 3))
    )
    li = li.with_columns(
        revenue=li["l_extendedprice"] * (1 - li["l_discount"])
    )
    view = li.group_by("l_suppkey").agg(total_revenue=("revenue", "sum"))
    if view.num_rows == 0:
        return view
    best = float(view.group_by().agg(m=("total_revenue", "max"))["m"][0])
    view = view.filter(np.isclose(view["total_revenue"], best))
    supp = src.scan(
        "supplier", ["s_suppkey", "s_name", "s_address", "s_phone"]
    )
    out = supp.join(view, left_on="s_suppkey", right_on="l_suppkey")
    return out.select(
        "s_suppkey", "s_name", "s_address", "s_phone", "total_revenue"
    ).order_by("s_suppkey")


def q16(src, brand: str = "Brand#45", type_prefix: str = "MEDIUM POLISHED",
        sizes=(49, 14, 23, 45, 19, 3, 36, 9)) -> Relation:
    """Parts/supplier relationship (touches no updated tables)."""
    part = src.scan("part", ["p_partkey", "p_brand", "p_type", "p_size"])
    part = part.filter(
        (part["p_brand"] != brand)
        & ~fn.starts_with(part["p_type"], type_prefix)
        & fn.isin(part["p_size"], set(sizes))
    )
    supp = src.scan("supplier", ["s_suppkey", "s_comment"])
    complainers = supp.filter(
        fn.like(supp["s_comment"], "%Customer%Complaints%")
    )
    ps = src.scan("partsupp", ["ps_partkey", "ps_suppkey"])
    ps = ps.join(complainers, left_on="ps_suppkey", right_on="s_suppkey",
                 how="anti")
    joined = ps.join(part, left_on="ps_partkey", right_on="p_partkey")
    out = joined.group_by("p_brand", "p_type", "p_size").agg(
        supplier_cnt=("ps_suppkey", "count_distinct")
    )
    return out.order_by(
        ("supplier_cnt", "desc"), ("p_brand", "asc"), ("p_type", "asc"),
        ("p_size", "asc"),
    )


def q17(src, brand: str = "Brand#23", container: str = "MED BOX") -> Relation:
    """Small-quantity-order revenue."""
    part = src.scan("part", ["p_partkey", "p_brand", "p_container"])
    part = part.filter(
        (part["p_brand"] == brand) & (part["p_container"] == container)
    )
    li = src.scan("lineitem", ["l_partkey", "l_quantity", "l_extendedprice"])
    joined = li.join(part, left_on="l_partkey", right_on="p_partkey",
                     how="semi")
    if joined.num_rows == 0:
        return Relation({"avg_yearly": np.zeros(1)})
    averages = joined.group_by("l_partkey").agg(avg_qty=("l_quantity", "avg"))
    joined = joined.join(averages, left_on="l_partkey")
    joined = joined.filter(
        joined["l_quantity"] < 0.2 * joined["avg_qty"]
    )
    out = joined.group_by().agg(total=("l_extendedprice", "sum"))
    return out.with_columns(
        avg_yearly=out["total"] / 7.0
    ).select("avg_yearly")


def q18(src, quantity: int = 300) -> Relation:
    """Large volume customers."""
    li = src.scan("lineitem", ["l_orderkey", "l_quantity"])
    per_order = li.group_by("l_orderkey").agg(sum_qty=("l_quantity", "sum"))
    big = per_order.filter(per_order["sum_qty"] > quantity)
    orders = src.scan(
        "orders", ["o_orderkey", "o_custkey", "o_orderdate", "o_totalprice"]
    )
    orders = orders.join(big, left_on="o_orderkey", right_on="l_orderkey")
    cust = src.scan("customer", ["c_custkey", "c_name"])
    out = orders.join(cust, left_on="o_custkey", right_on="c_custkey")
    out = out.select(
        "c_name", "c_custkey", "o_orderkey", "o_orderdate", "o_totalprice",
        "sum_qty",
    )
    return out.order_by(
        ("o_totalprice", "desc"), ("o_orderdate", "asc")
    ).limit(100)


def q19(src, brand1: str = "Brand#12", brand2: str = "Brand#23",
        brand3: str = "Brand#34", qty1: int = 1, qty2: int = 10,
        qty3: int = 20) -> Relation:
    """Discounted revenue (three branded OR conditions)."""
    li = src.scan(
        "lineitem",
        ["l_partkey", "l_quantity", "l_extendedprice", "l_discount",
         "l_shipmode", "l_shipinstruct"],
        where=ex.and_(ex.isin("l_shipmode", ("AIR", "REG AIR")),
                      ex.eq("l_shipinstruct", "DELIVER IN PERSON")),
    )
    li = li.filter(
        fn.isin(li["l_shipmode"], {"AIR", "REG AIR"})
        & (li["l_shipinstruct"] == "DELIVER IN PERSON")
    )
    part = src.scan(
        "part", ["p_partkey", "p_brand", "p_container", "p_size"]
    )
    joined = li.join(part, left_on="l_partkey", right_on="p_partkey")
    p = joined
    branch1 = (
        (p["p_brand"] == brand1)
        & fn.isin(p["p_container"], {"SM CASE", "SM BOX", "SM PACK",
                                     "SM PKG"})
        & (p["l_quantity"] >= qty1) & (p["l_quantity"] <= qty1 + 10)
        & (p["p_size"] >= 1) & (p["p_size"] <= 5)
    )
    branch2 = (
        (p["p_brand"] == brand2)
        & fn.isin(p["p_container"], {"MED BAG", "MED BOX", "MED PKG",
                                     "MED PACK"})
        & (p["l_quantity"] >= qty2) & (p["l_quantity"] <= qty2 + 10)
        & (p["p_size"] >= 1) & (p["p_size"] <= 10)
    )
    branch3 = (
        (p["p_brand"] == brand3)
        & fn.isin(p["p_container"], {"LG CASE", "LG BOX", "LG PACK",
                                     "LG PKG"})
        & (p["l_quantity"] >= qty3) & (p["l_quantity"] <= qty3 + 10)
        & (p["p_size"] >= 1) & (p["p_size"] <= 15)
    )
    joined = joined.filter(branch1 | branch2 | branch3)
    joined = joined.with_columns(
        revenue=joined["l_extendedprice"] * (1 - joined["l_discount"])
    )
    return joined.group_by().agg(revenue=("revenue", "sum"))


def q20(src, color: str = "forest", date: int | None = None,
        nation: str = "CANADA") -> Relation:
    """Potential part promotion."""
    date = D(1994, 1, 1) if date is None else date
    part = src.scan("part", ["p_partkey", "p_name"],
                    where=ex.starts_with("p_name", color))
    part = part.filter(fn.starts_with(part["p_name"], color))
    li = src.scan(
        "lineitem", ["l_partkey", "l_suppkey", "l_shipdate", "l_quantity"],
        where=ex.and_(ex.ge("l_shipdate", date),
                      ex.lt("l_shipdate", fn.add_years(date, 1))),
    )
    li = li.filter(
        (li["l_shipdate"] >= date)
        & (li["l_shipdate"] < fn.add_years(date, 1))
    )
    shipped = li.group_by("l_partkey", "l_suppkey").agg(
        qty=("l_quantity", "sum")
    )
    ps = src.scan("partsupp", ["ps_partkey", "ps_suppkey", "ps_availqty"])
    ps = ps.join(part, left_on="ps_partkey", right_on="p_partkey",
                 how="semi")
    ps = ps.join(
        shipped, left_on=["ps_partkey", "ps_suppkey"],
        right_on=["l_partkey", "l_suppkey"],
    )
    ps = ps.filter(ps["ps_availqty"] > 0.5 * ps["qty"])
    nations = src.scan("nation", ["n_nationkey", "n_name"])
    nations = nations.filter(nations["n_name"] == nation)
    supp = src.scan("supplier", ["s_suppkey", "s_name", "s_address",
                                 "s_nationkey"])
    supp = supp.join(nations, left_on="s_nationkey", right_on="n_nationkey",
                     how="semi")
    out = supp.join(ps, left_on="s_suppkey", right_on="ps_suppkey",
                    how="semi")
    return out.select("s_name", "s_address").order_by("s_name")


def q21(src, nation: str = "SAUDI ARABIA") -> Relation:
    """Suppliers who kept orders waiting."""
    li = src.scan(
        "lineitem",
        ["l_orderkey", "l_suppkey", "l_receiptdate", "l_commitdate"],
    )
    orders = src.scan("orders", ["o_orderkey", "o_orderstatus"],
                      where=ex.eq("o_orderstatus", "F"))
    failed = orders.filter(orders["o_orderstatus"] == "F")
    li = li.join(failed, left_on="l_orderkey", right_on="o_orderkey",
                 how="semi")
    late = li.filter(li["l_receiptdate"] > li["l_commitdate"])

    # Orders with lines from more than one supplier...
    suppliers_per_order = li.distinct("l_orderkey", "l_suppkey").group_by(
        "l_orderkey"
    ).agg(n_supp=("*", "count"))
    multi = suppliers_per_order.filter(suppliers_per_order["n_supp"] > 1)
    # ... where exactly one supplier was late.
    late_per_order = late.distinct("l_orderkey", "l_suppkey").group_by(
        "l_orderkey"
    ).agg(n_late=("*", "count"))
    one_late = late_per_order.filter(late_per_order["n_late"] == 1)

    candidate = late.join(multi, left_on="l_orderkey", how="semi")
    candidate = candidate.join(one_late, left_on="l_orderkey", how="semi")

    nations = src.scan("nation", ["n_nationkey", "n_name"])
    nations = nations.filter(nations["n_name"] == nation)
    supp = src.scan("supplier", ["s_suppkey", "s_name", "s_nationkey"])
    supp = supp.join(nations, left_on="s_nationkey", right_on="n_nationkey",
                     how="semi")
    joined = candidate.join(supp, left_on="l_suppkey", right_on="s_suppkey")
    out = joined.group_by("s_name").agg(numwait=("*", "count"))
    return out.order_by(("numwait", "desc"), ("s_name", "asc")).limit(100)


def q22(src, codes=("13", "31", "23", "29", "30", "18", "17")) -> Relation:
    """Global sales opportunity."""
    cust = src.scan("customer", ["c_custkey", "c_phone", "c_acctbal"])
    cust = cust.with_columns(cntrycode=fn.substring(cust["c_phone"], 1, 2))
    cust = cust.filter(fn.isin(cust["cntrycode"], set(codes)))
    positive = cust.filter(cust["c_acctbal"] > 0.0)
    if positive.num_rows == 0:
        return Relation(
            {"cntrycode": np.empty(0, dtype=object),
             "numcust": np.empty(0, dtype=np.int64),
             "totacctbal": np.empty(0, dtype=np.float64)}
        )
    avg_bal = float(
        positive.group_by().agg(a=("c_acctbal", "avg"))["a"][0]
    )
    rich = cust.filter(cust["c_acctbal"] > avg_bal)
    orders = src.scan("orders", ["o_custkey"])
    rich = rich.join(orders, left_on="c_custkey", right_on="o_custkey",
                     how="anti")
    out = rich.group_by("cntrycode").agg(
        numcust=("*", "count"), totacctbal=("c_acctbal", "sum")
    )
    return out.order_by("cntrycode")


ALL_QUERIES = {
    1: q01, 2: q02, 3: q03, 4: q04, 5: q05, 6: q06, 7: q07, 8: q08,
    9: q09, 10: q10, 11: q11, 12: q12, 13: q13, 14: q14, 15: q15, 16: q16,
    17: q17, 18: q18, 19: q19, 20: q20, 21: q21, 22: q22,
}

#: Queries that never scan orders/lineitem (identical across run modes).
NON_UPDATED_QUERIES = (2, 11, 16)


def run_query(number: int, src, **params) -> Relation:
    """Run TPC-H query ``number`` against a scan source."""
    try:
        query = ALL_QUERIES[number]
    except KeyError:
        raise ValueError(f"no TPC-H query {number}") from None
    return query(src, **params)
