"""Applying TPC-H refresh streams (RF1 inserts / RF2 deletes).

The paper's update load: "the official 2 TPC-H update streams which update
(insert and delete) roughly 0.1% of two main tables: lineitem and orders".
Because both tables are SK-ordered (orders by date, lineitem by orderkey),
these trickle updates scatter across the entire tables — the hostile case
for a column store that differential structures exist to absorb.

The same logical stream is applied to a PDT-managed database and to a
parallel set of VDTs, so Figure 19 compares identical table images.
"""

from __future__ import annotations

from ..db.database import Database
from ..vdt.vdt import VDT
from . import schema as tpch_schema
from .dbgen import RefreshPair, TpchData


def _lineitems_by_orderkey(data: TpchData) -> dict[int, list[int]]:
    """orderkey -> linenumbers of the original population (RF2 cascade)."""
    arrays = data.tables["lineitem"]
    mapping: dict[int, list[int]] = {}
    for ok, ln in zip(arrays["l_orderkey"], arrays["l_linenumber"]):
        mapping.setdefault(int(ok), []).append(int(ln))
    return mapping


def _orderdate_by_orderkey(data: TpchData) -> dict[int, int]:
    arrays = data.tables["orders"]
    return {
        int(k): int(d)
        for k, d in zip(arrays["o_orderkey"], arrays["o_orderdate"])
    }


class RefreshApplier:
    """Applies refresh pairs consistently across run modes."""

    def __init__(self, data: TpchData):
        self.data = data
        self._line_index = _lineitems_by_orderkey(data)
        self._date_index = _orderdate_by_orderkey(data)

    # -- PDT mode -----------------------------------------------------------

    def refresh_ops(self, pair: RefreshPair) -> tuple[dict, dict]:
        """The pair's logical updates as per-table op batches:
        ``(rf1_ops, rf2_ops)`` mapping table name -> operation list."""
        rf1 = {
            "orders": [("ins", row) for row in pair.new_orders],
            "lineitem": [("ins", row) for row in pair.new_lineitems],
        }
        rf2: dict[str, list] = {"orders": [], "lineitem": []}
        for orderkey in pair.delete_orderkeys:
            orderdate = self._date_index[orderkey]
            rf2["orders"].append(("del", (orderdate, orderkey)))
            for line in self._line_index.get(orderkey, ()):
                rf2["lineitem"].append(("del", (orderkey, line)))
        return rf1, rf2

    def apply_pdt(self, db: Database, pair: RefreshPair,
                  bulk: bool = True) -> None:
        """RF1 then RF2 as two transactions against the PDT database.

        The default routes each refresh through the vectorized bulk path
        (one batch per table per transaction — one WAL record per
        refresh half); ``bulk=False`` keeps the per-row scalar path as
        the differential-testing oracle. Either way the transaction
        routes logical names itself, so a range-sharded lineitem
        (``load_database(..., lineitem_shards=N)``) absorbs the stream
        shard by shard with no changes here.
        """
        if bulk:
            rf1, rf2 = self.refresh_ops(pair)
            with db.transaction() as txn:
                for table, ops in rf1.items():
                    txn.apply_batch(table, ops)
            with db.transaction() as txn:
                for table, ops in rf2.items():
                    txn.apply_batch(table, ops)
            return
        with db.transaction() as txn:
            for row in pair.new_orders:
                txn.insert("orders", row)
            for row in pair.new_lineitems:
                txn.insert("lineitem", row)
        with db.transaction() as txn:
            for orderkey in pair.delete_orderkeys:
                orderdate = self._date_index[orderkey]
                txn.delete("orders", (orderdate, orderkey))
                for line in self._line_index.get(orderkey, ()):
                    txn.delete("lineitem", (orderkey, line))

    def apply_all_pdt(self, db: Database, bulk: bool = True) -> None:
        for pair in self.data.refreshes:
            self.apply_pdt(db, pair, bulk=bulk)

    # -- VDT mode -----------------------------------------------------------

    def apply_vdt(self, vdts: dict[str, VDT], pair: RefreshPair) -> None:
        orders_vdt = vdts["orders"]
        lineitem_vdt = vdts["lineitem"]
        for row in pair.new_orders:
            orders_vdt.add_insert(row)
        for row in pair.new_lineitems:
            lineitem_vdt.add_insert(row)
        for orderkey in pair.delete_orderkeys:
            orderdate = self._date_index[orderkey]
            orders_vdt.add_delete((orderdate, orderkey))
            for line in self._line_index.get(orderkey, ()):
                lineitem_vdt.add_delete((orderkey, line))

    def apply_all_vdt(self, vdts: dict[str, VDT]) -> None:
        for pair in self.data.refreshes:
            self.apply_vdt(vdts, pair)

    def make_vdts(self) -> dict[str, VDT]:
        return {
            name: VDT(tpch_schema.SCHEMAS[name])
            for name in tpch_schema.UPDATED_TABLES
        }

    # -- reference mode --------------------------------------------------------

    def post_update_rows(self, table: str) -> list[tuple]:
        """Ground-truth rows of ``table`` after all refresh pairs, computed
        set-wise (for correctness tests)."""
        schema = tpch_schema.SCHEMAS[table]
        rows = {schema.sk_of(r): r for r in self.data.rows(table)}
        for pair in self.data.refreshes:
            if table == "orders":
                for row in pair.new_orders:
                    row = schema.coerce_row(row)
                    rows[schema.sk_of(row)] = row
                for orderkey in pair.delete_orderkeys:
                    orderdate = self._date_index[orderkey]
                    rows.pop((orderdate, orderkey), None)
            elif table == "lineitem":
                for row in pair.new_lineitems:
                    row = schema.coerce_row(row)
                    rows[schema.sk_of(row)] = row
                for orderkey in pair.delete_orderkeys:
                    for line in self._line_index.get(orderkey, ()):
                        rows.pop((orderkey, line), None)
            else:
                break
        return [rows[k] for k in sorted(rows)]
