"""Command-line Figure-19 runner.

Regenerates the paper's TPC-H comparison without pytest::

    python -m repro.tpch.runner --sf 0.01 --storage uncompressed \
        --temperature cold --queries 1,6,14

Prints, per query, the no-updates / VDT / PDT times and I/O volumes, plus
the normalized summary rows the paper's Figure 19 plots.
"""

from __future__ import annotations

import argparse
import sys
import time

from ..engine.scan import ScanTimer
from .loader import load_database
from .dbgen import generate
from .queries import ALL_QUERIES, run_query
from .sources import CleanSource, PdtSource, VdtSource
from .updates import RefreshApplier

READ_BANDWIDTH = 150e6  # paper workstation: 150 MB/s


def parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="repro.tpch.runner",
        description="TPC-H under an update load: no-updates vs VDT vs PDT",
    )
    parser.add_argument("--sf", type=float, default=0.01,
                        help="scale factor (default 0.01)")
    parser.add_argument("--storage", choices=["compressed", "uncompressed"],
                        default="uncompressed")
    parser.add_argument("--temperature", choices=["cold", "hot"],
                        default="cold")
    parser.add_argument("--queries", default="all",
                        help="comma-separated query numbers, or 'all'")
    parser.add_argument("--refresh-pairs", type=int, default=2,
                        help="number of RF1/RF2 pairs to apply")
    parser.add_argument("--seed", type=int, default=20100608)
    return parser.parse_args(argv)


def select_queries(spec: str) -> list[int]:
    if spec == "all":
        return sorted(ALL_QUERIES)
    numbers = []
    for token in spec.split(","):
        number = int(token)
        if number not in ALL_QUERIES:
            raise SystemExit(f"unknown TPC-H query {number}")
        numbers.append(number)
    return numbers


def main(argv=None) -> int:
    args = parse_args(argv)
    queries = select_queries(args.queries)

    print(f"generating TPC-H SF={args.sf} "
          f"({args.refresh_pairs} refresh pairs) ...", flush=True)
    data = generate(scale=args.sf, seed=args.seed,
                    refresh_pairs=args.refresh_pairs)
    db = load_database(data, compressed=args.storage == "compressed")
    applier = RefreshApplier(data)
    applier.apply_all_pdt(db)
    vdts = applier.make_vdts()
    applier.apply_all_vdt(vdts)
    timer = ScanTimer()
    sources = {
        "none": CleanSource(db, timer),
        "vdt": VdtSource(db, vdts, timer),
        "pdt": PdtSource(db, timer),
    }
    print(f"  lineitem={data.row_count('lineitem'):,} rows, "
          f"orders={data.row_count('orders'):,} rows, "
          f"storage={args.storage}, temperature={args.temperature}\n")

    header = (
        f"{'query':>6} {'mode':>5} {'time_ms':>9} {'scan_ms':>9} "
        f"{'io_MiB':>8} {'vs_vdt':>7}"
    )
    print(header)
    print("-" * len(header))
    for number in queries:
        per_mode = {}
        for mode, src in sources.items():
            if args.temperature == "cold":
                db.make_cold()
            else:
                run_query(number, src)  # warm
            timer.reset()
            before = db.io.snapshot()
            start = time.perf_counter()
            run_query(number, src)
            elapsed = time.perf_counter() - start
            io = db.io.since(before)
            if args.temperature == "cold":
                elapsed += io.bytes_read / READ_BANDWIDTH
            per_mode[mode] = (elapsed, timer.seconds, io.bytes_read)
        base = per_mode["vdt"][0] or 1e-12
        for mode in ("none", "vdt", "pdt"):
            elapsed, scan_s, io_bytes = per_mode[mode]
            print(
                f"Q{number:>5} {mode:>5} {elapsed * 1e3:9.2f} "
                f"{scan_s * 1e3:9.2f} {io_bytes / (1 << 20):8.2f} "
                f"{elapsed / base:7.3f}"
            )
    return 0


if __name__ == "__main__":
    sys.exit(main())
