"""TPC-H schemas with the paper's physical sort orders.

Matching section 4 of the paper: ``lineitem`` is ordered on
``(l_orderkey, l_linenumber)`` and ``orders`` on ``(o_orderdate,
o_orderkey)`` — index-organized columnar storage whose ordered-ness makes
trickle updates scatter across the whole table.
"""

from __future__ import annotations

from ..storage.schema import DataType, Schema

I, F, S, D = DataType.INT64, DataType.FLOAT64, DataType.STRING, DataType.DATE


REGION = Schema.build(
    ("r_regionkey", I), ("r_name", S), ("r_comment", S),
    sort_key=("r_regionkey",),
)

NATION = Schema.build(
    ("n_nationkey", I), ("n_name", S), ("n_regionkey", I), ("n_comment", S),
    sort_key=("n_nationkey",),
)

SUPPLIER = Schema.build(
    ("s_suppkey", I), ("s_name", S), ("s_address", S), ("s_nationkey", I),
    ("s_phone", S), ("s_acctbal", F), ("s_comment", S),
    sort_key=("s_suppkey",),
)

CUSTOMER = Schema.build(
    ("c_custkey", I), ("c_name", S), ("c_address", S), ("c_nationkey", I),
    ("c_phone", S), ("c_acctbal", F), ("c_mktsegment", S), ("c_comment", S),
    sort_key=("c_custkey",),
)

PART = Schema.build(
    ("p_partkey", I), ("p_name", S), ("p_mfgr", S), ("p_brand", S),
    ("p_type", S), ("p_size", I), ("p_container", S), ("p_retailprice", F),
    ("p_comment", S),
    sort_key=("p_partkey",),
)

PARTSUPP = Schema.build(
    ("ps_partkey", I), ("ps_suppkey", I), ("ps_availqty", I),
    ("ps_supplycost", F), ("ps_comment", S),
    sort_key=("ps_partkey", "ps_suppkey"),
)

ORDERS = Schema.build(
    ("o_orderdate", D), ("o_orderkey", I), ("o_custkey", I),
    ("o_orderstatus", S), ("o_totalprice", F), ("o_orderpriority", S),
    ("o_clerk", S), ("o_shippriority", I), ("o_comment", S),
    sort_key=("o_orderdate", "o_orderkey"),
)

LINEITEM = Schema.build(
    ("l_orderkey", I), ("l_linenumber", I), ("l_partkey", I),
    ("l_suppkey", I), ("l_quantity", F), ("l_extendedprice", F),
    ("l_discount", F), ("l_tax", F), ("l_returnflag", S),
    ("l_linestatus", S), ("l_shipdate", D), ("l_commitdate", D),
    ("l_receiptdate", D), ("l_shipinstruct", S), ("l_shipmode", S),
    ("l_comment", S),
    sort_key=("l_orderkey", "l_linenumber"),
)

SCHEMAS: dict[str, Schema] = {
    "region": REGION,
    "nation": NATION,
    "supplier": SUPPLIER,
    "customer": CUSTOMER,
    "part": PART,
    "partsupp": PARTSUPP,
    "orders": ORDERS,
    "lineitem": LINEITEM,
}

#: Tables touched by the refresh streams; queries over only the others do
#: not differ between no-updates / VDT / PDT runs (paper footnote 6).
UPDATED_TABLES = ("orders", "lineitem")
