"""Deterministic, vectorized TPC-H data generator (scaled down).

A from-scratch dbgen substitute: same schemas, cardinality ratios, value
domains, and distribution shapes as the official generator, implemented
with seeded numpy so any scale factor regenerates identically. Text fields
are simplified but preserve every property the 22 queries predicate on
(colors in ``p_name``, type/container vocabularies, phone country codes,
the Q13 ``%special%requests%`` comments, Q16's Customer Complaints...).

Initial orders receive *even* order keys; refresh-stream inserts use *odd*
keys drawn uniformly over the same range, so RF1 inserts scatter across
the whole SK-ordered table exactly like the official key-reservation
scheme does (the behaviour the paper's update load depends on).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..engine.functions import days
from . import schema as tpch_schema

REGIONS = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]

NATIONS = [  # (name, region index) — the official 25 nations
    ("ALGERIA", 0), ("ARGENTINA", 1), ("BRAZIL", 1), ("CANADA", 1),
    ("EGYPT", 4), ("ETHIOPIA", 0), ("FRANCE", 3), ("GERMANY", 3),
    ("INDIA", 2), ("INDONESIA", 2), ("IRAN", 4), ("IRAQ", 4),
    ("JAPAN", 2), ("JORDAN", 4), ("KENYA", 0), ("MOROCCO", 0),
    ("MOZAMBIQUE", 0), ("PERU", 1), ("CHINA", 2), ("ROMANIA", 3),
    ("SAUDI ARABIA", 4), ("VIETNAM", 2), ("RUSSIA", 3),
    ("UNITED KINGDOM", 3), ("UNITED STATES", 1),
]

COLORS = [
    "almond", "antique", "aquamarine", "azure", "beige", "bisque", "black",
    "blanched", "blue", "blush", "brown", "burlywood", "burnished", "chart",
    "chiffon", "chocolate", "coral", "cornflower", "cream", "cyan", "dark",
    "deep", "dim", "dodger", "drab", "firebrick", "floral", "forest",
    "frosted", "gainsboro", "ghost", "goldenrod", "green", "grey", "honey",
    "hot", "indian", "ivory", "khaki", "lace", "lavender", "lawn", "lemon",
    "light", "lime", "linen", "magenta", "maroon", "medium", "metallic",
    "midnight", "mint", "misty", "moccasin", "navajo", "navy", "olive",
    "orange", "orchid", "pale", "papaya", "peach", "peru", "pink", "plum",
    "powder", "puff", "purple", "red", "rose", "rosy", "royal", "saddle",
    "salmon", "sandy", "seashell", "sienna", "sky", "slate", "smoke",
    "snow", "spring", "steel", "tan", "thistle", "tomato", "turquoise",
    "violet", "wheat", "white", "yellow",
]

TYPE_SYLL1 = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"]
TYPE_SYLL2 = ["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"]
TYPE_SYLL3 = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"]

CONTAINER_SYLL1 = ["SM", "LG", "MED", "JUMBO", "WRAP"]
CONTAINER_SYLL2 = ["CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"]

SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"]
PRIORITIES = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"]
SHIP_INSTRUCT = [
    "DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN",
]
SHIP_MODES = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"]

FILLER_WORDS = [
    "carefully", "furiously", "quickly", "slyly", "blithely", "deposits",
    "requests", "packages", "accounts", "instructions", "theodolites",
    "platelets", "ideas", "foxes", "pinto", "beans", "asymptotes",
]

START_DATE = days(1992, 1, 1)
END_DATE = days(1998, 8, 2)  # CURRENTDATE per spec is 1995-06-17
CURRENT_DATE = days(1995, 6, 17)


@dataclass
class RefreshPair:
    """One RF1/RF2 refresh pair: rows to insert and order keys to delete."""

    new_orders: list[tuple] = field(default_factory=list)
    new_lineitems: list[tuple] = field(default_factory=list)
    delete_orderkeys: list[int] = field(default_factory=list)


@dataclass
class TpchData:
    """Generated tables (numpy column dicts, sorted by SK) + refresh sets."""

    scale: float
    tables: dict = field(default_factory=dict)
    refreshes: list[RefreshPair] = field(default_factory=list)

    def row_count(self, table: str) -> int:
        arrays = self.tables[table]
        return len(next(iter(arrays.values())))

    def rows(self, table: str) -> list[tuple]:
        schema = tpch_schema.SCHEMAS[table]
        arrays = self.tables[table]
        cols = [arrays[c] for c in schema.column_names]
        return [tuple(col[i] for col in cols) for i in range(len(cols[0]))]


def _obj(values) -> np.ndarray:
    arr = np.empty(len(values), dtype=object)
    arr[:] = values
    return arr


def _pick(rng, choices, n) -> np.ndarray:
    idx = rng.randint(0, len(choices), size=n)
    return _obj([choices[i] for i in idx])


def _comment(rng, n, special_fraction=0.0) -> np.ndarray:
    words = [
        " ".join(
            FILLER_WORDS[j]
            for j in rng.randint(0, len(FILLER_WORDS), size=4)
        )
        for _ in range(n)
    ]
    if special_fraction > 0 and n:
        hits = rng.rand(n) < special_fraction
        for i in np.flatnonzero(hits):
            words[i] = "dolphins special packages requests " + words[i]
    return _obj(words)


def _phone(nation_keys: np.ndarray, rng) -> np.ndarray:
    locals_ = rng.randint(100, 999, size=(len(nation_keys), 3))
    return _obj(
        [
            f"{int(nk) + 10}-{a}-{b}-{c}"
            for nk, (a, b, c) in zip(nation_keys, locals_)
        ]
    )


def generate(scale: float = 0.01, seed: int = 19920101,
             refresh_pairs: int = 2,
             refresh_fraction: float = 0.001) -> TpchData:
    """Generate all eight tables plus ``refresh_pairs`` RF1/RF2 sets.

    ``refresh_fraction`` mirrors the official streams: each pair inserts
    and deletes ~0.1% of the orders (and their lineitems).
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    data = TpchData(scale=scale)
    n_supplier = max(int(scale * 10_000), 5)
    n_customer = max(int(scale * 150_000), 15)
    n_part = max(int(scale * 200_000), 20)
    n_orders = max(int(scale * 1_500_000), 50)

    data.tables["region"] = _gen_region()
    data.tables["nation"] = _gen_nation()
    data.tables["supplier"] = _gen_supplier(n_supplier, seed)
    data.tables["customer"] = _gen_customer(n_customer, seed)
    data.tables["part"] = _gen_part(n_part, seed)
    data.tables["partsupp"] = _gen_partsupp(n_part, n_supplier, seed)
    orders, lineitems = _gen_orders_lineitem(
        n_orders, n_customer, n_part, n_supplier, seed
    )
    data.tables["orders"] = orders
    data.tables["lineitem"] = lineitems

    rng = np.random.RandomState(seed + 777)
    per_pair = max(int(n_orders * refresh_fraction), 1)
    used_odd: set[int] = set()
    deleted: set[int] = set()
    even_keys = orders["o_orderkey"]
    for _ in range(refresh_pairs):
        pair = _gen_refresh_pair(
            rng, per_pair, n_orders, n_customer, n_part, n_supplier,
            used_odd, deleted, even_keys,
        )
        data.refreshes.append(pair)
    return data


# ---------------------------------------------------------------------------
# per-table generators


def _gen_region() -> dict:
    return {
        "r_regionkey": np.arange(len(REGIONS), dtype=np.int64),
        "r_name": _obj(REGIONS),
        "r_comment": _obj([f"region {r.lower()}" for r in REGIONS]),
    }


def _gen_nation() -> dict:
    return {
        "n_nationkey": np.arange(len(NATIONS), dtype=np.int64),
        "n_name": _obj([n for n, _ in NATIONS]),
        "n_regionkey": np.asarray([r for _, r in NATIONS], dtype=np.int64),
        "n_comment": _obj([f"nation {n.lower()}" for n, _ in NATIONS]),
    }


def _gen_supplier(n: int, seed: int) -> dict:
    rng = np.random.RandomState(seed + 1)
    keys = np.arange(1, n + 1, dtype=np.int64)
    nation = rng.randint(0, len(NATIONS), size=n).astype(np.int64)
    comments = _comment(rng, n)
    # ~0.05% of suppliers carry the Q16 complaints marker.
    for i in np.flatnonzero(rng.rand(n) < 0.0005):
        comments[i] = "wake Customer slyly Complaints " + comments[i]
    return {
        "s_suppkey": keys,
        "s_name": _obj([f"Supplier#{k:09d}" for k in keys]),
        "s_address": _obj([f"addr sup {k}" for k in keys]),
        "s_nationkey": nation,
        "s_phone": _phone(nation, rng),
        "s_acctbal": rng.uniform(-999.99, 9999.99, size=n).round(2),
        "s_comment": comments,
    }


def _gen_customer(n: int, seed: int) -> dict:
    rng = np.random.RandomState(seed + 2)
    keys = np.arange(1, n + 1, dtype=np.int64)
    nation = rng.randint(0, len(NATIONS), size=n).astype(np.int64)
    return {
        "c_custkey": keys,
        "c_name": _obj([f"Customer#{k:09d}" for k in keys]),
        "c_address": _obj([f"addr cst {k}" for k in keys]),
        "c_nationkey": nation,
        "c_phone": _phone(nation, rng),
        "c_acctbal": rng.uniform(-999.99, 9999.99, size=n).round(2),
        "c_mktsegment": _pick(rng, SEGMENTS, n),
        "c_comment": _comment(rng, n),
    }


def _gen_part(n: int, seed: int) -> dict:
    rng = np.random.RandomState(seed + 3)
    keys = np.arange(1, n + 1, dtype=np.int64)
    names = _obj(
        [
            f"{COLORS[a]} {COLORS[b]}"
            for a, b in zip(
                rng.randint(0, len(COLORS), size=n),
                rng.randint(0, len(COLORS), size=n),
            )
        ]
    )
    mfgr_no = rng.randint(1, 6, size=n)
    brand_no = mfgr_no * 10 + rng.randint(1, 6, size=n)
    types = _obj(
        [
            f"{TYPE_SYLL1[a]} {TYPE_SYLL2[b]} {TYPE_SYLL3[c]}"
            for a, b, c in zip(
                rng.randint(0, len(TYPE_SYLL1), size=n),
                rng.randint(0, len(TYPE_SYLL2), size=n),
                rng.randint(0, len(TYPE_SYLL3), size=n),
            )
        ]
    )
    containers = _obj(
        [
            f"{CONTAINER_SYLL1[a]} {CONTAINER_SYLL2[b]}"
            for a, b in zip(
                rng.randint(0, len(CONTAINER_SYLL1), size=n),
                rng.randint(0, len(CONTAINER_SYLL2), size=n),
            )
        ]
    )
    return {
        "p_partkey": keys,
        "p_name": names,
        "p_mfgr": _obj([f"Manufacturer#{m}" for m in mfgr_no]),
        "p_brand": _obj([f"Brand#{b}" for b in brand_no]),
        "p_type": types,
        "p_size": rng.randint(1, 51, size=n).astype(np.int64),
        "p_container": containers,
        "p_retailprice": (
            900 + (keys % 1000) / 10 + 100 * (keys % 10)
        ).astype(np.float64),
        "p_comment": _comment(rng, n),
    }


def _gen_partsupp(n_part: int, n_supplier: int, seed: int) -> dict:
    rng = np.random.RandomState(seed + 4)
    part_keys = np.repeat(np.arange(1, n_part + 1, dtype=np.int64), 4)
    n = len(part_keys)
    # Four distinct suppliers per part, in ascending suppkey order per the
    # composite sort key.
    supp = np.empty((n_part, 4), dtype=np.int64)
    base = rng.randint(0, n_supplier, size=n_part)
    for j in range(4):
        supp[:, j] = (base + j * max(n_supplier // 4, 1)) % n_supplier + 1
    supp.sort(axis=1)
    supp_keys = supp.reshape(-1)
    return {
        "ps_partkey": part_keys,
        "ps_suppkey": supp_keys,
        "ps_availqty": rng.randint(1, 10_000, size=n).astype(np.int64),
        "ps_supplycost": rng.uniform(1.0, 1000.0, size=n).round(2),
        "ps_comment": _comment(rng, n),
    }


def _order_row_arrays(rng, orderkeys, n_customer):
    n = len(orderkeys)
    dates = rng.randint(START_DATE, END_DATE - 150, size=n).astype(np.int32)
    return {
        "o_orderdate": dates,
        "o_orderkey": np.asarray(orderkeys, dtype=np.int64),
        "o_custkey": rng.randint(1, n_customer + 1, size=n).astype(np.int64),
        "o_orderstatus": _obj(["O"] * n),  # fixed up after lineitems
        "o_totalprice": np.zeros(n, dtype=np.float64),
        "o_orderpriority": _pick(rng, PRIORITIES, n),
        "o_clerk": _obj(
            [f"Clerk#{int(c):09d}" for c in rng.randint(1, 1001, size=n)]
        ),
        "o_shippriority": np.zeros(n, dtype=np.int64),
        "o_comment": _comment(rng, n, special_fraction=0.02),
    }


def _lineitem_rows_for(rng, orderkey, orderdate, n_part, n_supplier):
    n_lines = int(rng.randint(1, 8))
    rows = []
    total = 0.0
    any_open = False
    for line in range(1, n_lines + 1):
        qty = float(rng.randint(1, 51))
        partkey = int(rng.randint(1, n_part + 1))
        suppkey = int(rng.randint(1, n_supplier + 1))
        price = round(qty * (900 + partkey % 1000 / 10 + 100 * (partkey % 10)) / 100, 2)
        discount = round(float(rng.randint(0, 11)) / 100, 2)
        tax = round(float(rng.randint(0, 9)) / 100, 2)
        shipdate = int(orderdate) + int(rng.randint(1, 122))
        commitdate = int(orderdate) + int(rng.randint(30, 91))
        receiptdate = shipdate + int(rng.randint(1, 31))
        if receiptdate <= CURRENT_DATE:
            returnflag = "R" if rng.rand() < 0.5 else "A"
        else:
            returnflag = "N"
        linestatus = "F" if shipdate <= CURRENT_DATE else "O"
        any_open = any_open or linestatus == "O"
        total += price * (1 - discount) * (1 + tax)
        rows.append(
            (
                int(orderkey), line, partkey, suppkey, qty, price, discount,
                tax, returnflag, linestatus, shipdate, commitdate,
                receiptdate,
                SHIP_INSTRUCT[int(rng.randint(0, len(SHIP_INSTRUCT)))],
                SHIP_MODES[int(rng.randint(0, len(SHIP_MODES)))],
                "line filler",
            )
        )
    status = "O" if any_open else "F"
    if any_open and any(r[9] == "F" for r in rows):
        status = "P"
    return rows, round(total, 2), status


def _gen_orders_lineitem(n_orders, n_customer, n_part, n_supplier, seed):
    rng = np.random.RandomState(seed + 5)
    orderkeys = np.arange(1, n_orders + 1, dtype=np.int64) * 2  # even keys
    orders = _order_row_arrays(rng, orderkeys, n_customer)

    line_rows: list[tuple] = []
    statuses = []
    totals = np.zeros(n_orders, dtype=np.float64)
    for i in range(n_orders):
        rows, total, status = _lineitem_rows_for(
            rng, orderkeys[i], orders["o_orderdate"][i], n_part, n_supplier
        )
        line_rows.extend(rows)
        totals[i] = total
        statuses.append(status)
    orders["o_totalprice"] = totals
    orders["o_orderstatus"] = _obj(statuses)

    order_sort = np.lexsort(
        (orders["o_orderkey"], orders["o_orderdate"])
    )
    orders = {k: v[order_sort] for k, v in orders.items()}

    line_rows.sort(key=lambda r: (r[0], r[1]))
    schema = tpch_schema.LINEITEM
    lineitem = {}
    for idx, spec in enumerate(schema.columns):
        values = [r[idx] for r in line_rows]
        if spec.dtype.numpy_dtype == object:
            lineitem[spec.name] = _obj(values)
        else:
            lineitem[spec.name] = np.asarray(
                values, dtype=spec.dtype.numpy_dtype
            )
    return orders, lineitem


def _gen_refresh_pair(rng, per_pair, n_orders, n_customer, n_part,
                      n_supplier, used_odd, deleted, even_keys):
    pair = RefreshPair()
    # RF1: brand-new orders with odd keys scattered over the key range.
    while len(pair.new_orders) < per_pair:
        key = int(rng.randint(0, n_orders)) * 2 + 1
        if key in used_odd:
            continue
        used_odd.add(key)
        orderdate = int(rng.randint(START_DATE, END_DATE - 150))
        arrays = _order_row_arrays(
            np.random.RandomState(key), np.asarray([key]), n_customer
        )
        rows, total, status = _lineitem_rows_for(
            np.random.RandomState(key + 1), key, orderdate, n_part,
            n_supplier,
        )
        order_row = (
            orderdate, key, int(arrays["o_custkey"][0]), status,
            total, str(arrays["o_orderpriority"][0]),
            str(arrays["o_clerk"][0]), 0, str(arrays["o_comment"][0]),
        )
        pair.new_orders.append(order_row)
        pair.new_lineitems.extend(rows)
    # RF2: delete existing orders (scattered, never twice).
    while len(pair.delete_orderkeys) < per_pair:
        key = int(even_keys[int(rng.randint(0, len(even_keys)))])
        if key in deleted:
            continue
        deleted.add(key)
        pair.delete_orderkeys.append(key)
    return pair
