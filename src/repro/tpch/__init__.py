"""TPC-H substrate: schemas, dbgen, loader, refresh streams, 22 queries."""

from . import queries, schema
from .dbgen import RefreshPair, TpchData, generate
from .loader import build, load_database
from .queries import ALL_QUERIES, NON_UPDATED_QUERIES, run_query
from .sources import CleanSource, PdtSource, VdtSource
from .updates import RefreshApplier

__all__ = [
    "ALL_QUERIES",
    "CleanSource",
    "NON_UPDATED_QUERIES",
    "PdtSource",
    "RefreshApplier",
    "RefreshPair",
    "TpchData",
    "VdtSource",
    "build",
    "generate",
    "load_database",
    "queries",
    "run_query",
    "schema",
]
