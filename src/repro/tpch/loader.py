"""Loading generated TPC-H data into a Database."""

from __future__ import annotations

from ..db.database import Database
from . import schema as tpch_schema
from .dbgen import TpchData, generate


def load_database(
    data: TpchData,
    compressed: bool = True,
    block_rows: int = 4096,
    buffer_capacity: int | None = None,
    lineitem_shards: int | None = None,
    **db_kwargs,
) -> Database:
    """Bulk-load all eight tables into a fresh database.

    ``lineitem_shards`` loads lineitem — the largest, refresh-heavy table
    — as a range-sharded table with that many orderkey-range shards;
    queries fan out per shard and the RF1/RF2 refresh streams route their
    batches shard by shard. Extra keyword arguments reach the
    ``Database`` constructor (e.g. ``slow_query_ms=...``, ``trace=True``
    to run the benchmark with telemetry on).
    """
    db = Database(
        compressed=compressed,
        block_rows=block_rows,
        buffer_capacity=buffer_capacity,
        **db_kwargs,
    )
    for name, schema in tpch_schema.SCHEMAS.items():
        if name == "lineitem" and lineitem_shards is not None:
            db.create_sharded_table_from_arrays(
                name, schema, data.tables[name], shards=lineitem_shards
            )
        else:
            db.create_table_from_arrays(name, schema, data.tables[name])
    return db


def build(scale: float = 0.01, compressed: bool = True, seed: int = 19920101,
          **kwargs):
    """One-call convenience: generate data and load it. Returns
    ``(data, db)``."""
    data = generate(scale=scale, seed=seed)
    return data, load_database(data, compressed=compressed, **kwargs)
