"""Scan sources for the three TPC-H run modes of Figure 19.

* :class:`CleanSource` — "no-updates": scans stable tables directly.
* :class:`PdtSource` — positional merging through the database's PDT
  layers (reads only requested columns).
* :class:`VdtSource` — value-based merging for the updated tables (always
  reads their sort-key columns) and clean scans for the rest.

All three share one :class:`~repro.db.database.Database` (hence one buffer
pool and one I/O accounting), so per-query time and I/O are directly
comparable across modes.
"""

from __future__ import annotations

from ..db.database import Database
from ..engine.relation import Relation
from ..engine.scan import ScanTimer, scan_clean, scan_vdt
from ..vdt.vdt import VDT


class CleanSource:
    """No-updates run: stable images only.

    ``where`` hints are ignored: the queries re-apply their full
    predicates centrally, so skipping push-down only costs time, never
    correctness.
    """

    def __init__(self, db: Database, timer: ScanTimer | None = None):
        self.db = db
        self.timer = timer

    def scan(self, table: str, columns=None, where=None) -> Relation:
        return scan_clean(self.db.table(table), columns=columns,
                          timer=self.timer)


class PdtSource:
    """PDT run: positional MergeScan through Read/Write layers.

    ``where`` hints route through :meth:`Database.query`'s push-down
    path: the shard router prunes shards whose sort-key ranges cannot
    satisfy the predicate, and each surviving shard's scan filters rows
    before they are materialized.
    """

    def __init__(self, db: Database, timer: ScanTimer | None = None):
        self.db = db
        self.timer = timer

    def scan(self, table: str, columns=None, where=None) -> Relation:
        return self.db.query(table, columns=columns, timer=self.timer,
                             where=where)


class VdtSource:
    """VDT run: value-based MergeScan for tables that have deltas.

    ``where`` hints are ignored (the VDT merge path has no push-down);
    queries re-filter centrally, so results stay identical across modes.
    """

    def __init__(self, db: Database, vdts: dict[str, VDT],
                 timer: ScanTimer | None = None):
        self.db = db
        self.vdts = vdts
        self.timer = timer

    def scan(self, table: str, columns=None, where=None) -> Relation:
        vdt = self.vdts.get(table)
        if vdt is None or vdt.is_empty():
            return scan_clean(self.db.table(table), columns=columns,
                              timer=self.timer)
        return scan_vdt(self.db.table(table), vdt, columns=columns,
                        timer=self.timer)
