"""Value-based delta tree (VDT) baseline and its merge scan."""

from .merge import vdt_merge_rows, vdt_merge_scan
from .vdt import VDT

__all__ = ["VDT", "vdt_merge_rows", "vdt_merge_scan"]
