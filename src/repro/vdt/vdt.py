"""VDT: the value-based delta tree baseline (paper section 2.1, "VDTs").

The classical way to organize a columnar write-store — used e.g. by
MonetDB — keeps two B-trees in sort-key order:

* an **insert table** holding full tuples for all inserted *and modified*
  rows (a modify stores the post-modification image), and
* a **delete table** holding the sort keys of deleted *or modified* stable
  rows.

Read queries replace every table scan by::

    MergeUnion[SK](Scan(ins), MergeDiff[SK](Scan(stable), Scan(del)))

which requires scanning — and comparing — the sort-key columns on every
query, the cost the PDT eliminates. This module implements the structure;
:mod:`repro.vdt.merge` implements the value-based merge scan.
"""

from __future__ import annotations

from ..storage.btree import BPlusTree
from ..storage.schema import Schema


class VDT:
    """Value-based write-store: SK-ordered insert + delete B-trees."""

    def __init__(self, schema: Schema, order: int = 64):
        self.schema = schema
        # sk -> (row_list, from_stable): from_stable marks modified stable
        # tuples (their key is also in the delete tree), as opposed to
        # fresh inserts.
        self._ins = BPlusTree(order=order)
        self._del = BPlusTree(order=order)  # sk -> None

    # -- update operations (value-addressed) --------------------------------

    def add_insert(self, row) -> None:
        """Record insertion of a brand-new tuple."""
        row = list(self.schema.coerce_row(row))
        sk = self.schema.sk_of(row)
        if sk in self._ins:
            raise ValueError(f"duplicate insert of key {sk!r}")
        # Re-insert of a key whose stable tuple was deleted is legal: the
        # delete entry keeps shadowing the stable row, the insert supplies
        # the new one.
        self._ins.insert(sk, (row, sk in self._del))

    def add_delete(self, sk) -> None:
        """Record deletion of the live tuple with key ``sk``."""
        sk = tuple(sk)
        entry = self._ins.get(sk)
        if entry is not None:
            row, from_stable = entry
            self._ins.delete(sk)
            if not from_stable:
                return  # a pure insert vanishes without a trace
            # Modified stable tuple: its key is already in the delete tree.
            return
        self._del.insert(sk, None)

    def add_modify(self, current_row, col_no: int, value) -> None:
        """Record modification of one attribute.

        ``current_row`` is the tuple's full current image (the update query
        produced it); value-based stores need it because the insert table
        holds complete rows.
        """
        row = list(self.schema.coerce_row(current_row))
        sk = self.schema.sk_of(row)
        col_name = self.schema.columns[col_no].name
        if self.schema.is_sk_column(col_name):
            raise ValueError(
                "sort-key modifies must be decomposed into delete+insert"
            )
        entry = self._ins.get(sk)
        if entry is not None:
            stored, from_stable = entry
            stored[col_no] = value
            return
        row[col_no] = value
        self._ins.insert(sk, (row, True))
        self._del.insert(sk, None)

    # -- read access ---------------------------------------------------------

    def insert_items(self):
        """``(sk, row)`` pairs of the insert table, in SK order."""
        for sk, (row, _) in self._ins.items():
            yield sk, row

    def delete_keys(self):
        """Deleted/modified stable keys, in SK order."""
        for sk, _ in self._del.items():
            yield sk

    def insert_count(self) -> int:
        return len(self._ins)

    def delete_count(self) -> int:
        return len(self._del)

    def count(self) -> int:
        """Total number of delta entries (for size parity with PDTs)."""
        return len(self._ins) + len(self._del)

    def is_empty(self) -> bool:
        return self.count() == 0

    def total_delta(self) -> int:
        """Net row-count change."""
        return len(self._ins) - len(self._del)

    def memory_usage(self) -> int:
        """Rough byte model: full rows in ins, keys in del.

        Unlike the PDT's fixed 16 bytes/update, VDT inserts carry whole
        tuples and modifies duplicate them — part of the paper's argument.
        """
        row_bytes = 16 * len(self.schema)
        key_bytes = 16 * len(self.schema.sort_key)
        return len(self._ins) * row_bytes + len(self._del) * key_bytes

    def copy(self) -> "VDT":
        clone = VDT(self.schema)
        for sk, (row, from_stable) in self._ins.items():
            clone._ins.insert(sk, (list(row), from_stable))
        for sk, _ in self._del.items():
            clone._del.insert(sk, None)
        return clone

    def clear(self) -> None:
        self._ins.clear()
        self._del.clear()

    def check_invariants(self) -> None:
        self._ins.check_invariants()
        self._del.check_invariants()
        for sk, (row, from_stable) in self._ins.items():
            if self.schema.sk_of(row) != sk:
                raise AssertionError(f"ins row key mismatch at {sk!r}")
            if from_stable and sk not in self._del:
                raise AssertionError(
                    f"modified stable tuple {sk!r} missing delete entry"
                )

    def __repr__(self) -> str:
        return f"VDT(ins={len(self._ins)}, del={len(self._del)})"
