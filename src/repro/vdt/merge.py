"""Value-based MergeScan for the VDT baseline.

Implements the physical plan the paper gives for VDT reads::

    MergeUnion[SK](Scan(ins), MergeDiff[SK](Scan(stable), Scan(del)))

Two costs distinguish this from positional merging, both reproduced here:

1. **I/O**: the stable table's sort-key columns are always scanned, even
   when the query does not project them (they are added to the scan set
   and charged to the buffer pool / I/O statistics).
2. **CPU**: every delta entry is located by *value* within each block via
   per-key-column binary searches — string comparisons and multi-column
   keys make this progressively more expensive (Figures 17 and 18), while
   the PDT's positional merge does no key work at all.
"""

from __future__ import annotations

import numpy as np

from .vdt import VDT


def _narrow(key_arrays, key_tuple, lo: int, hi: int):
    """Range of positions in SK-sorted ``key_arrays`` equal to
    ``key_tuple``, narrowing one key column at a time (cost grows with the
    number of sort-key columns — deliberately value-based work)."""
    for arr, val in zip(key_arrays, key_tuple):
        segment = arr[lo:hi]
        left = int(np.searchsorted(segment, val, side="left"))
        right = int(np.searchsorted(segment, val, side="right"))
        lo, hi = lo + left, lo + right
        if lo >= hi:
            break
    return lo, hi


def _lower_bound(key_arrays, key_tuple, n: int) -> int:
    """First position whose composite key is >= ``key_tuple``."""
    lo, hi = 0, n
    eq_lo, eq_hi = 0, n
    for i, (arr, val) in enumerate(zip(key_arrays, key_tuple)):
        segment = arr[eq_lo:eq_hi]
        left = eq_lo + int(np.searchsorted(segment, val, side="left"))
        right = eq_lo + int(np.searchsorted(segment, val, side="right"))
        if i == len(key_tuple) - 1:
            return left
        if left >= right:
            return left
        eq_lo, eq_hi = left, right
    return eq_lo


def vdt_merge_scan(stable, vdt: VDT, columns=None, batch_rows: int = 1024):
    """Block-oriented value-based merge scan over a full table.

    Yields ``(first_rid, {column: ndarray})``. Sort-key columns are always
    fetched from storage (and charged as I/O); they are included in the
    output only when requested.
    """
    schema = stable.schema
    if columns is None:
        columns = schema.column_names
    columns = list(columns)
    if not columns:
        raise ValueError("merge requires at least one output column")
    sk_cols = list(schema.sort_key)
    scan_cols = list(dict.fromkeys(columns + sk_cols))  # ordered union
    col_indexes = {c: schema.column_index(c) for c in columns}

    ins_iter = vdt.insert_items()
    del_iter = vdt.delete_keys()
    pending_ins = next(ins_iter, None)
    pending_del = next(del_iter, None)

    out_rid = 0
    n_blocks_seen = 0
    for first_sid, arrays in stable.scan(columns=scan_cols,
                                         batch_rows=batch_rows):
        n_blocks_seen += 1
        key_arrays = [arrays[c] for c in sk_cols]
        n = len(key_arrays[0])
        if n == 0:
            continue
        block_last = tuple(arr[-1] for arr in key_arrays)

        # MergeDiff: locate and mask out deleted keys in this block.
        keep = None
        while pending_del is not None and pending_del <= block_last:
            lo, hi = _narrow(key_arrays, pending_del, 0, n)
            if lo < hi:
                if keep is None:
                    keep = np.ones(n, dtype=bool)
                keep[lo] = False
                pending_del = next(del_iter, None)
            else:
                # Key absent from this block (boundary effect): it must be
                # in a later block only if greater than block_last, which
                # the loop guard excludes — treat as consumed.
                pending_del = next(del_iter, None)

        # MergeUnion: collect inserts belonging before/inside this block.
        ins_positions: list[int] = []
        ins_rows: list[list] = []
        while pending_ins is not None and pending_ins[0] <= block_last:
            sk, row = pending_ins
            pos = _lower_bound(key_arrays, sk, n)
            ins_positions.append(pos)
            ins_rows.append(row)
            pending_ins = next(ins_iter, None)

        out = {}
        kept_before = None
        if keep is not None and ins_positions:
            kept_before = np.zeros(n + 1, dtype=np.int64)
            np.cumsum(keep, out=kept_before[1:])
        for col in columns:
            arr = arrays[col]
            if keep is not None:
                arr = arr[keep]
            if ins_positions:
                if kept_before is None:
                    positions = np.asarray(ins_positions, dtype=np.int64)
                else:
                    positions = kept_before[
                        np.asarray(ins_positions, dtype=np.int64)
                    ]
                values = [row[col_indexes[col]] for row in ins_rows]
                if arr.dtype == object:
                    merged = np.empty(len(arr) + len(values), dtype=object)
                    mask = np.ones(len(merged), dtype=bool)
                    where = positions + np.arange(len(positions))
                    mask[where] = False
                    merged[~mask] = values
                    merged[mask] = arr
                    arr = merged
                else:
                    arr = np.insert(arr, positions, values)
            out[col] = arr
        out_n = len(out[columns[0]])
        if out_n:
            yield out_rid, out
            out_rid += out_n

    # Drain inserts sorting after the last stable tuple.
    tail_rows = []
    while pending_ins is not None:
        tail_rows.append(pending_ins[1])
        pending_ins = next(ins_iter, None)
    if tail_rows:
        out = {}
        for col in columns:
            dtype = schema.dtype_of(col).numpy_dtype
            if dtype == object:
                arr = np.empty(len(tail_rows), dtype=object)
                arr[:] = [row[col_indexes[col]] for row in tail_rows]
            else:
                arr = np.asarray(
                    [row[col_indexes[col]] for row in tail_rows], dtype=dtype
                )
            out[col] = arr
        yield out_rid, out


def vdt_merge_rows(stable_rows, vdt: VDT) -> list[tuple]:
    """Tuple-at-a-time MergeUnion/MergeDiff (reference implementation)."""
    schema = vdt.schema
    ins_iter = vdt.insert_items()
    del_iter = vdt.delete_keys()
    pending_ins = next(ins_iter, None)
    pending_del = next(del_iter, None)
    out = []
    for row in stable_rows:
        sk = schema.sk_of(row)
        while pending_ins is not None and pending_ins[0] < sk:
            out.append(tuple(pending_ins[1]))
            pending_ins = next(ins_iter, None)
        while pending_del is not None and pending_del < sk:
            pending_del = next(del_iter, None)
        if pending_del is not None and pending_del == sk:
            pending_del = next(del_iter, None)
            continue
        out.append(tuple(row))
    while pending_ins is not None:
        out.append(tuple(pending_ins[1]))
        pending_ins = next(ins_iter, None)
    return out
