"""The Positional Delta Tree (paper sections 2-3).

A PDT is a B+-tree-like structure over two non-unique, monotonically
increasing keys — the stable ID (SID) and the current row ID (RID) — whose
leaves hold update triplets ``(sid, type, value-ref)`` and whose inner
nodes carry, per child, a separator SID (the minimum SID of that child's
subtree) and a ``delta`` counter (the net inserts-minus-deletes of the
subtree). Summing deltas along a root-to-leaf path yields the RID of any
entry as ``RID = SID + delta`` (equation (3)); this is what makes *counted*
positional lookup logarithmic while positions keep shifting under inserts
and deletes.

Differences from the paper's C implementation, documented per DESIGN.md:

* Fan-out defaults to 32 (not the cache-line-derived 8); Python node
  objects are not cache-line entities, but the logarithmic behaviour the
  microbenchmarks measure is preserved and the fan-out is configurable.
* A tuple may carry several modify entries (one per modified column,
  ordered by column number) sharing the same (SID, RID) — the layout
  Algorithm 2's "MODs same tuple" loop expects.
* Empty non-root nodes are removed rather than rebalanced; PDTs live in
  RAM and are emptied wholesale by Propagate/checkpoint, so underflow
  rebalancing buys nothing (same choice as the VDT's B-tree).

``memory_usage()`` reports the paper's cost model (16 bytes per update
entry) so that checkpoint-threshold policies and the Figure 16 series are
comparable with the paper's.
"""

from __future__ import annotations

from ..storage.schema import Schema
from .types import (
    Entry,
    KIND_DEL,
    KIND_INS,
    PDTError,
    delta_of,
    is_modify,
)
from .value_space import ValueSpace

DEFAULT_FANOUT = 32


class _Leaf:
    __slots__ = ("sids", "kinds", "refs", "parent", "next", "prev")

    def __init__(self):
        self.sids: list[int] = []
        self.kinds: list[int] = []
        self.refs: list[int] = []
        self.parent: _Inner | None = None
        self.next: _Leaf | None = None
        self.prev: _Leaf | None = None

    @property
    def is_leaf(self) -> bool:
        return True

    def __len__(self) -> int:
        return len(self.sids)

    def subtree_delta(self) -> int:
        return sum(delta_of(k) for k in self.kinds)

    def min_sid(self) -> int:
        return self.sids[0] if self.sids else 0


class _Inner:
    __slots__ = ("seps", "deltas", "children", "parent")

    def __init__(self):
        self.seps: list[int] = []  # min SID of each child's subtree
        self.deltas: list[int] = []  # net insert-delete delta per child
        self.children: list = []
        self.parent: _Inner | None = None

    @property
    def is_leaf(self) -> bool:
        return False

    def __len__(self) -> int:
        return len(self.children)

    def subtree_delta(self) -> int:
        return sum(self.deltas)

    def min_sid(self) -> int:
        return self.seps[0] if self.seps else 0


class PDT:
    """Positional Delta Tree: the paper's differential write-store."""

    def __init__(self, schema: Schema, fanout: int = DEFAULT_FANOUT):
        if fanout < 4:
            raise ValueError("fanout must be >= 4")
        self.schema = schema
        self.fanout = fanout
        self.values = ValueSpace(schema)
        self._root: _Leaf | _Inner = _Leaf()
        self._count = 0

    # ------------------------------------------------------------------
    # basic accessors

    def __len__(self) -> int:
        return self._count

    def count(self) -> int:
        return self._count

    def is_empty(self) -> bool:
        return self._count == 0

    def total_delta(self) -> int:
        return self._root.subtree_delta()

    def depth(self) -> int:
        node, d = self._root, 1
        while not node.is_leaf:
            node = node.children[0]
            d += 1
        return d

    def memory_usage(self) -> int:
        """Bytes under the paper's C model: 16 per leaf entry, plus inner
        node (sid, delta, pointer) slots."""
        inner_slots = 0

        def visit(node):
            nonlocal inner_slots
            if not node.is_leaf:
                inner_slots += len(node.children)
                for child in node.children:
                    visit(child)

        visit(self._root)
        return 16 * self._count + 24 * inner_slots

    # ------------------------------------------------------------------
    # iteration

    def iter_entries(self, start_sid: int = 0):
        """Yield :class:`Entry` records in (SID, RID) order.

        With ``start_sid``, iteration begins at the first entry whose SID
        is >= ``start_sid`` (a logarithmic seek plus a bounded walk).
        """
        if start_sid <= 0:
            leaf = self._leftmost_leaf()
            pos = 0
            delta = 0
        else:
            leaf, delta = self._descend_leftmost_by_sid(start_sid)
            pos = 0
            while leaf is not None:
                while pos < len(leaf) and leaf.sids[pos] < start_sid:
                    delta += delta_of(leaf.kinds[pos])
                    pos += 1
                if pos < len(leaf):
                    break
                leaf, pos = leaf.next, 0
        while leaf is not None:
            while pos < len(leaf):
                sid = leaf.sids[pos]
                kind = leaf.kinds[pos]
                yield Entry(sid, sid + delta, kind, leaf.refs[pos])
                delta += delta_of(kind)
                pos += 1
            leaf, pos = leaf.next, 0

    def entry_lists(self, start_sid: int = 0, stop_sid: int | None = None):
        """Parallel ``(sids, kinds, refs)`` lists of entries with SID in
        ``[start_sid, stop_sid)``, in (SID, RID) order.

        The bulk form of :meth:`iter_entries` used by the block-pipelined
        MergeScan: leaves are drained with ``list.extend`` so the hot scan
        path never pays per-entry generator resumption or :class:`Entry`
        construction. ``stop_sid`` bounds the walk for range scans, so a
        narrow scan of a large PDT stays proportional to the range.
        """
        sids: list[int] = []
        kinds: list[int] = []
        refs: list[int] = []
        if start_sid <= 0:
            leaf = self._leftmost_leaf()
            pos = 0
        else:
            leaf, _ = self._descend_leftmost_by_sid(start_sid)
            pos = 0
            while leaf is not None:
                while pos < len(leaf) and leaf.sids[pos] < start_sid:
                    pos += 1
                if pos < len(leaf):
                    break
                leaf, pos = leaf.next, 0
        while leaf is not None:
            if stop_sid is not None and leaf.sids and \
                    leaf.sids[-1] >= stop_sid:
                # Partial leaf at the range end: take entries below stop.
                while pos < len(leaf) and leaf.sids[pos] < stop_sid:
                    sids.append(leaf.sids[pos])
                    kinds.append(leaf.kinds[pos])
                    refs.append(leaf.refs[pos])
                    pos += 1
                break
            if pos:
                sids.extend(leaf.sids[pos:])
                kinds.extend(leaf.kinds[pos:])
                refs.extend(leaf.refs[pos:])
                pos = 0
            else:
                sids.extend(leaf.sids)
                kinds.extend(leaf.kinds)
                refs.extend(leaf.refs)
            leaf = leaf.next
        return sids, kinds, refs

    def value_of(self, entry: Entry):
        return self.values.value_of(entry.kind, entry.ref)

    def delta_before_sid(self, sid: int) -> int:
        """Net delta of all entries with SID strictly below ``sid``."""
        if sid <= 0:
            return 0
        leaf, delta = self._descend_leftmost_by_sid(sid)
        while leaf is not None:
            for pos in range(len(leaf)):
                if leaf.sids[pos] >= sid:
                    return delta
                delta += delta_of(leaf.kinds[pos])
            leaf = leaf.next
        return delta

    # ------------------------------------------------------------------
    # update operations (Algorithms 3, 4, 5)

    def add_insert(self, sid: int, rid: int, row) -> None:
        """Record the insertion of ``row`` as the new tuple at ``rid``
        (Algorithm 3). ``sid`` comes from :meth:`sk_rid_to_sid`."""
        leaf, delta = self._descend_by_sid_rid(sid, rid)
        pos = 0
        while pos < len(leaf) and (
            leaf.sids[pos] < sid or leaf.sids[pos] + delta < rid
        ):
            delta += delta_of(leaf.kinds[pos])
            pos += 1
        if rid - delta != sid:
            raise PDTError(
                f"inconsistent insert: sid={sid} rid={rid} delta={delta}"
            )
        ref = self.values.add_insert(row)
        self._leaf_insert(leaf, pos, sid, KIND_INS, ref)

    def add_modify(self, rid: int, col_no: int, value) -> None:
        """Record a modification of column ``col_no`` of the live tuple at
        ``rid`` (Algorithm 4), updating in place when the tuple already has
        PDT entries. Modify chains may span leaves, so positioning starts
        at the chain head and walks forward across leaf links."""
        leaf, pos, delta = self._locate_rid(rid)
        entry = self._entry_at(leaf, pos)
        if entry is not None and leaf.sids[pos] + delta == rid:
            kind = leaf.kinds[pos]
            if kind == KIND_INS:
                self.values.modify_insert(leaf.refs[pos], col_no, value)
                return
            if kind == KIND_DEL:
                raise PDTError(f"modify of deleted tuple at rid {rid}")
            # Walk the tuple's modify chain (ordered by column number).
            while True:
                if pos == len(leaf):
                    if leaf.next is None:
                        break
                    leaf, pos = leaf.next, 0
                    continue
                kind = leaf.kinds[pos]
                if (
                    leaf.sids[pos] + delta != rid
                    or not is_modify(kind)
                    or kind > col_no
                ):
                    break
                if kind == col_no:
                    self.values.set_modify(col_no, leaf.refs[pos], value)
                    return
                pos += 1
        ref = self.values.add_modify(col_no, value)
        self._leaf_insert(leaf, pos, rid - delta, col_no, ref)

    def add_delete(self, rid: int, sk_values) -> None:
        """Record the deletion of the live tuple at ``rid`` (Algorithm 5).

        Deleting a PDT-resident insert erases it; deleting a stable tuple
        with modify entries replaces them all with a single DEL carrying
        the tuple's sort key."""
        leaf, pos, delta = self._locate_rid(rid)
        entry = self._entry_at(leaf, pos)
        if entry is not None and leaf.sids[pos] + delta == rid:
            if leaf.kinds[pos] == KIND_INS:
                self.values.free_insert(leaf.refs[pos])
                self._leaf_remove(leaf, pos)
                return
            self._remove_modify_chain(leaf, pos, delta, rid)
            leaf, pos, delta = self._locate_rid(rid)
        ref = self.values.add_delete(sk_values)
        self._leaf_insert(leaf, pos, rid - delta, KIND_DEL, ref)

    def _remove_modify_chain(self, leaf: _Leaf, pos: int, delta: int,
                             rid: int) -> None:
        """Remove every modify entry of the tuple at ``rid``, walking
        across leaves; leaves emptied along the way are unlinked."""
        while True:
            if pos == len(leaf):
                if leaf.next is None:
                    return
                leaf, pos = leaf.next, 0
                continue
            if (
                leaf.sids[pos] + delta != rid
                or not is_modify(leaf.kinds[pos])
            ):
                return
            successor = leaf.next
            self._leaf_remove(leaf, pos)
            if len(leaf) == 0:  # leaf was unlinked from the tree
                if successor is None:
                    return
                leaf, pos = successor, 0

    def sk_rid_to_sid(self, sk_values, rid: int) -> int:
        """SID for inserting a tuple with key ``sk_values`` at ``rid``,
        skipping boundary ghosts with smaller keys (Algorithm 6)."""
        sk = tuple(sk_values)
        leaf, delta = self._descend_leftmost_by_rid(rid)
        pos = 0
        while leaf is not None:
            if pos >= len(leaf):
                leaf, pos = leaf.next, 0
                continue
            entry_rid = leaf.sids[pos] + delta
            if entry_rid < rid:
                delta += delta_of(leaf.kinds[pos])
                pos += 1
                continue
            if (
                entry_rid == rid
                and leaf.kinds[pos] == KIND_DEL
                and sk > self.values.get_delete(leaf.refs[pos])
            ):
                delta -= 1
                pos += 1
                continue
            break
        return rid - delta

    # ------------------------------------------------------------------
    # RID <=> SID mapping (the conceptual core of positional deltas)

    def rid_to_sid(self, rid: int) -> int:
        """Stable ID of the live tuple currently at position ``rid``.

        For tuples inserted through this PDT the result is their assigned
        ghost-respecting SID; for untouched stable tuples it is their
        position in TABLE0.
        """
        leaf, pos, delta = self._locate_rid(rid)
        if pos < len(leaf) and leaf.sids[pos] + delta == rid:
            return leaf.sids[pos]
        return rid - delta

    def sid_to_rid(self, sid: int) -> int:
        """Current position of stable tuple ``sid`` (equation (3)).

        Ghost tuples (deleted through this PDT) map to the position of the
        first following live tuple, per the paper's ghost-RID convention.
        """
        delta = self.delta_before_sid(sid)
        for entry in self.iter_entries(start_sid=sid):
            if entry.sid != sid:
                break
            if entry.kind == KIND_INS:
                delta += 1
            else:
                break  # the tuple's own DEL/MOD chain starts here
        return sid + delta

    def append_entry(self, sid: int, kind: int, payload) -> None:
        """Append an entry sorting after all existing ones (Serialize's
        output path and ``copy()``)."""
        leaf = self._rightmost_leaf()
        if leaf.sids and leaf.sids[-1] > sid:
            raise PDTError(
                f"append out of order: sid {sid} < {leaf.sids[-1]}"
            )
        if kind == KIND_INS:
            ref = self.values.add_insert(payload)
        elif kind == KIND_DEL:
            ref = self.values.add_delete(payload)
        else:
            ref = self.values.add_modify(kind, payload)
        self._leaf_insert(leaf, len(leaf), sid, kind, ref)

    def bulk_append_entries(self, triples) -> None:
        """Ingest a whole SID-ordered ``(sid, kind, payload)`` run at once.

        The bulk twin of :meth:`append_entry` used by the batch update
        path, ``propagate_batch`` and WAL replay. On an empty tree the
        leaves and inner levels are built bottom-up in one pass — no
        per-entry root descents, no incremental splits; on a non-empty
        tree the run (which must still sort after every existing entry)
        falls back to per-entry appends.
        """
        triples = list(triples)
        if not triples:
            return
        for i in range(1, len(triples)):
            if triples[i][0] < triples[i - 1][0]:
                raise PDTError(
                    f"bulk append out of order: sid {triples[i][0]} < "
                    f"{triples[i - 1][0]}"
                )
        if self._count:
            for sid, kind, payload in triples:
                self.append_entry(sid, kind, payload)
            return
        refs = []
        for _, kind, payload in triples:
            if kind == KIND_INS:
                refs.append(self.values.add_insert(payload))
            elif kind == KIND_DEL:
                refs.append(self.values.add_delete(payload))
            else:
                refs.append(self.values.add_modify(kind, payload))
        # Leaves at ~2/3 occupancy so follow-up scalar adds do not split
        # immediately; inner levels chunked the same way.
        per_leaf = max(2, (self.fanout * 2) // 3)
        leaves: list[_Leaf] = []
        for at in range(0, len(triples), per_leaf):
            chunk = triples[at:at + per_leaf]
            leaf = _Leaf()
            leaf.sids = [t[0] for t in chunk]
            leaf.kinds = [t[1] for t in chunk]
            leaf.refs = refs[at:at + per_leaf]
            if leaves:
                leaf.prev = leaves[-1]
                leaves[-1].next = leaf
            leaves.append(leaf)
        self._count = len(triples)
        level: list = leaves
        while len(level) > 1:
            parents: list = []
            for at in range(0, len(level), per_leaf):
                chunk = level[at:at + per_leaf]
                inner = _Inner()
                inner.children = chunk
                inner.seps = [c.min_sid() for c in chunk]
                inner.deltas = [c.subtree_delta() for c in chunk]
                for child in chunk:
                    child.parent = inner
                parents.append(inner)
            level = parents
        self._root = level[0]

    # ------------------------------------------------------------------
    # housekeeping

    def copy(self) -> "PDT":
        """Deep copy (snapshot of the Write-PDT at transaction start)."""
        clone = PDT(self.schema, self.fanout)
        for entry in self.iter_entries():
            if entry.kind == KIND_INS:
                payload = list(self.values.get_insert(entry.ref))
            elif entry.kind == KIND_DEL:
                payload = self.values.get_delete(entry.ref)
            else:
                payload = self.values.get_modify(entry.kind, entry.ref)
            clone.append_entry(entry.sid, entry.kind, payload)
        return clone

    def clear(self) -> None:
        self._root = _Leaf()
        self._count = 0
        self.values.clear()

    def __repr__(self) -> str:
        return (
            f"PDT(entries={self._count}, delta={self.total_delta()}, "
            f"depth={self.depth()})"
        )

    # ------------------------------------------------------------------
    # descents (Algorithm 1 family)

    def _descend_rightmost_by_rid(self, rid: int):
        """Rightmost leaf whose first entry's RID is <= ``rid`` and the
        delta accumulated before it."""
        node, delta = self._root, 0
        while not node.is_leaf:
            acc = delta
            chosen, chosen_delta = 0, delta
            for i in range(len(node.children)):
                if i > 0 and node.seps[i] + acc > rid:
                    break
                chosen, chosen_delta = i, acc
                acc += node.deltas[i]
            node, delta = node.children[chosen], chosen_delta
        return node, delta

    def _descend_leftmost_by_rid(self, rid: int):
        """Leftmost leaf that may contain the first entry with RID >=
        ``rid`` (the start of an equal-RID chain)."""
        node, delta = self._root, 0
        while not node.is_leaf:
            acc = delta
            chosen, chosen_delta = 0, delta
            for i in range(len(node.children)):
                if i > 0 and node.seps[i] + acc >= rid:
                    break
                chosen, chosen_delta = i, acc
                acc += node.deltas[i]
            node, delta = node.children[chosen], chosen_delta
        return node, delta

    def _descend_by_sid_rid(self, sid: int, rid: int):
        """Rightmost leaf whose first entry's (SID, RID) is strictly below
        the target pair — where an insert at (sid, rid) belongs. Strictness
        matters: a new insert precedes existing entries at an equal
        (SID, RID), so when such a chain starts exactly at a leaf boundary
        the insert must land at the end of the preceding leaf."""
        node, delta = self._root, 0
        while not node.is_leaf:
            acc = delta
            chosen, chosen_delta = 0, delta
            for i in range(len(node.children)):
                if i > 0 and (node.seps[i], node.seps[i] + acc) >= (sid, rid):
                    break
                chosen, chosen_delta = i, acc
                acc += node.deltas[i]
            node, delta = node.children[chosen], chosen_delta
        return node, delta

    def _descend_leftmost_by_sid(self, sid: int):
        """Leftmost leaf that may contain the first entry with SID >=
        ``sid``."""
        node, delta = self._root, 0
        while not node.is_leaf:
            acc = delta
            chosen, chosen_delta = 0, delta
            for i in range(len(node.children)):
                if i > 0 and node.seps[i] >= sid:
                    break
                chosen, chosen_delta = i, acc
                acc += node.deltas[i]
            node, delta = node.children[chosen], chosen_delta
        return node, delta

    def _locate_rid(self, rid: int):
        """Position where updates for live tuple ``rid`` go: the start of
        its chain, past any ghost (DEL) entries sharing this RID, walking
        leaf links when chains cross leaf boundaries. Returns
        ``(leaf, pos, delta)``."""
        leaf, delta = self._descend_leftmost_by_rid(rid)
        pos = 0
        while True:
            if pos == len(leaf):
                if leaf.next is None:
                    break
                leaf, pos = leaf.next, 0
                continue
            entry_rid = leaf.sids[pos] + delta
            if entry_rid < rid:
                delta += delta_of(leaf.kinds[pos])
                pos += 1
                continue
            if entry_rid == rid and leaf.kinds[pos] == KIND_DEL:
                delta -= 1
                pos += 1
                continue
            break
        return leaf, pos, delta

    @staticmethod
    def _entry_at(leaf: _Leaf, pos: int):
        """The (sid, kind) at a position, or None at the end of the tree."""
        if pos >= len(leaf):
            return None
        return leaf.sids[pos], leaf.kinds[pos]

    def _leftmost_leaf(self) -> _Leaf:
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
        return node

    def _rightmost_leaf(self) -> _Leaf:
        node = self._root
        while not node.is_leaf:
            node = node.children[-1]
        return node

    # ------------------------------------------------------------------
    # structural mutation

    def _leaf_insert(self, leaf: _Leaf, pos: int, sid: int, kind: int,
                     ref: int) -> None:
        leaf.sids.insert(pos, sid)
        leaf.kinds.insert(pos, kind)
        leaf.refs.insert(pos, ref)
        self._count += 1
        change = delta_of(kind)
        if change:
            self._add_path_deltas(leaf, change)
        if pos == 0:
            self._refresh_seps(leaf)
        if len(leaf) > self.fanout:
            self._split(leaf)

    def _leaf_remove(self, leaf: _Leaf, pos: int) -> None:
        change = delta_of(leaf.kinds[pos])
        del leaf.sids[pos]
        del leaf.kinds[pos]
        del leaf.refs[pos]
        self._count -= 1
        if change:
            self._add_path_deltas(leaf, -change)
        if len(leaf) == 0:
            self._remove_node(leaf)
        elif pos == 0:
            self._refresh_seps(leaf)

    def _add_path_deltas(self, leaf: _Leaf, change: int) -> None:
        node = leaf
        parent = node.parent
        while parent is not None:
            parent.deltas[parent.children.index(node)] += change
            node, parent = parent, parent.parent

    def _refresh_seps(self, node) -> None:
        child = node
        parent = child.parent
        while parent is not None:
            idx = parent.children.index(child)
            new_min = child.min_sid()
            if parent.seps[idx] == new_min:
                break
            parent.seps[idx] = new_min
            if idx != 0:
                break
            child, parent = parent, parent.parent

    def _split(self, node) -> None:
        while node is not None and len(node) > self.fanout:
            parent = node.parent
            if parent is None:
                parent = _Inner()
                parent.children = [node]
                parent.seps = [node.min_sid()]
                parent.deltas = [node.subtree_delta()]
                node.parent = parent
                self._root = parent
            idx = parent.children.index(node)
            right = self._split_node(node)
            right.parent = parent
            parent.children.insert(idx + 1, right)
            parent.seps.insert(idx + 1, right.min_sid())
            parent.deltas[idx] = node.subtree_delta()
            parent.deltas.insert(idx + 1, right.subtree_delta())
            node = parent

    @staticmethod
    def _split_node(node):
        if node.is_leaf:
            mid = len(node) // 2
            right = _Leaf()
            right.sids = node.sids[mid:]
            right.kinds = node.kinds[mid:]
            right.refs = node.refs[mid:]
            node.sids = node.sids[:mid]
            node.kinds = node.kinds[:mid]
            node.refs = node.refs[:mid]
            right.next = node.next
            right.prev = node
            if node.next is not None:
                node.next.prev = right
            node.next = right
            return right
        mid = len(node) // 2
        right = _Inner()
        right.children = node.children[mid:]
        right.seps = node.seps[mid:]
        right.deltas = node.deltas[mid:]
        node.children = node.children[:mid]
        node.seps = node.seps[:mid]
        node.deltas = node.deltas[:mid]
        for child in right.children:
            child.parent = right
        return right

    def _remove_node(self, node) -> None:
        parent = node.parent
        if node.is_leaf:
            if node.prev is not None:
                node.prev.next = node.next
            if node.next is not None:
                node.next.prev = node.prev
        if parent is None:
            # The root itself emptied out: reset to a fresh empty leaf.
            self._root = _Leaf()
            return
        idx = parent.children.index(node)
        del parent.children[idx]
        del parent.seps[idx]
        del parent.deltas[idx]
        node.parent = None
        if len(parent.children) == 0:
            self._remove_node(parent)
        else:
            if idx == 0:
                # The parent's own minimum changed: refresh the ancestors'
                # separators *for the parent* (not for the surviving child,
                # whose separator is already correct).
                self._refresh_seps(parent)
            if parent.parent is None and len(parent.children) == 1:
                only = parent.children[0]
                only.parent = None
                self._root = only

    # ------------------------------------------------------------------
    # validation

    def check_invariants(self) -> None:
        """Full structural validation: counted-tree bookkeeping, ordering,
        chain shapes, and leaf linkage (used heavily by tests)."""
        leaves_struct: list[_Leaf] = []

        def visit(node, parent):
            if node.parent is not parent:
                raise PDTError("parent pointer mismatch")
            if node.is_leaf:
                if parent is not None and len(node) == 0:
                    raise PDTError("empty non-root leaf")
                if len(node) > self.fanout:
                    raise PDTError("leaf overflow")
                leaves_struct.append(node)
                return
            if not (
                len(node.children) == len(node.seps) == len(node.deltas)
            ):
                raise PDTError("inner node arity mismatch")
            if len(node.children) == 0:
                raise PDTError("empty inner node")
            if len(node.children) > self.fanout:
                raise PDTError("inner overflow")
            for i, child in enumerate(node.children):
                if node.seps[i] != child.min_sid():
                    raise PDTError(
                        f"separator {node.seps[i]} != child min "
                        f"{child.min_sid()}"
                    )
                if node.deltas[i] != child.subtree_delta():
                    raise PDTError(
                        f"delta {node.deltas[i]} != child subtree "
                        f"{child.subtree_delta()}"
                    )
                visit(child, node)

        visit(self._root, None)

        linked = []
        leaf = self._leftmost_leaf()
        while leaf is not None:
            linked.append(leaf)
            if leaf.next is not None and leaf.next.prev is not leaf:
                raise PDTError("broken leaf back-link")
            leaf = leaf.next
        if [id(x) for x in linked] != [id(x) for x in leaves_struct]:
            raise PDTError("leaf chain does not match tree order")

        count = sum(len(leaf) for leaf in leaves_struct)
        if count != self._count:
            raise PDTError(f"count {self._count} != leaf total {count}")

        self._check_entry_stream()

    def _check_entry_stream(self) -> None:
        prev_sid = prev_rid = None
        prev_kind = None
        for entry in self.iter_entries():
            if prev_sid is not None:
                if entry.sid < prev_sid:
                    raise PDTError(
                        f"sid order violated: {entry.sid} < {prev_sid}"
                    )
                if entry.rid < prev_rid:
                    raise PDTError(
                        f"rid order violated: {entry.rid} < {prev_rid}"
                    )
                if (
                    entry.sid == prev_sid
                    and entry.rid == prev_rid
                    and is_modify(entry.kind)
                    and is_modify(prev_kind)
                    and entry.kind <= prev_kind
                ):
                    raise PDTError("modify chain columns not increasing")
            self.values.value_of(entry.kind, entry.ref)
            prev_sid, prev_rid, prev_kind = entry.sid, entry.rid, entry.kind
