"""Stacked differential structures (paper section 2, "Stacking").

A table image at time t is the stable image merged with a bottom-up stack
of PDT layers (equation (9)): typically Read-PDT, Write-PDT snapshot, and
Trans-PDT. Each layer's SID domain is the RID domain of the layer below.
This module composes :class:`~repro.core.merge.BlockMerger` instances over
a stable scan and validates layer relationships.

The composition is a *block pipeline*: every layer is a generator splicing
its updates into the blocks of the layer below, so a block flows from the
decoded storage block through the whole Read/Write/Trans stack — and out
to the consumer — before the next block is touched. No intermediate row
list (or intermediate relation) is ever materialized, and blocks no layer
touches are passed through the entire stack by reference.
"""

from __future__ import annotations

from .merge import MERGE_BLOCK_ROWS, BlockMerger, merge_row_stream


def merge_scan_layers(
    stable,
    layers,
    columns=None,
    start: int = 0,
    stop: int | None = None,
    batch_rows: int = MERGE_BLOCK_ROWS,
):
    """Block-oriented MergeScan through a stack of PDT layers, bottom-up.

    ``layers`` lists PDTs from the lowest (closest to the stable table,
    e.g. the Read-PDT) to the highest (e.g. a Trans-PDT). Yields
    ``(first_rid, {column: ndarray})`` in the topmost layer's RID domain.

    Range scans (``stop`` before the table end) suppress trailing inserts,
    mirroring how a sparse-index-restricted scan only produces tuples
    within its SID range.
    """
    if columns is None:
        columns = stable.schema.column_names
    full = stop is None or stop >= stable.num_rows
    stream = stable.scan(columns=columns, start=start, stop=stop,
                         batch_rows=batch_rows)
    # Each layer's scan bounds are the previous layer's output positions
    # of the range ends: pos_{i+1} = pos_i + delta_before(pos_i) (deltas
    # strictly before a position, so boundary inserts stay in the next
    # range). Empty layers are identity merges and are skipped outright.
    pos = min(start, stable.num_rows)
    stop_pos = None if full else stop
    for pdt in layers:
        if pdt.is_empty():
            continue
        stream = BlockMerger(pdt, columns).merge_batches(
            stream, drain_tail=full, start_sid=pos, stop_sid=stop_pos
        )
        pos = pos + pdt.delta_before_sid(pos)
        if stop_pos is not None:
            stop_pos = stop_pos + pdt.delta_before_sid(stop_pos)
    return stream


def merge_rows_layers(stable_rows, layers) -> list[tuple]:
    """Tuple-at-a-time merge through a stack of layers (testing path)."""
    stream = iter(stable_rows)
    for pdt in layers:
        stream = merge_row_stream(stream, pdt)
    return list(stream)


def image_rows(stable, layers) -> list[tuple]:
    """Materialize the full current table image as Python tuples."""
    return merge_rows_layers(stable.rows(), layers)


def total_delta(layers) -> int:
    """Net row-count change contributed by a stack of layers."""
    return sum(layer.total_delta() for layer in layers)
