"""Serialize: transpose an overlapping PDT to be consecutive (Algorithm 8).

Transactions x and y started from the same snapshot, so their Trans-PDTs
``Tx`` and ``Ty`` are *aligned* (paper Definition 1). When y commits first,
x's updates must be re-expressed relative to the post-y table image before
they can be propagated — and impossibility of doing so is exactly a
write-write conflict, aborting x. ``serialize(tx, ty)`` returns the
transformed T'x (a new PDT of the same class as ``tx``) or raises
:class:`~repro.core.types.TransactionConflict`.

Conflict rules (tuple-level write-write, reconciling disjoint-column
modifies, per the paper):

* y deleted a stable tuple that x deletes or modifies  -> conflict
* y modified a tuple that x deletes                    -> conflict (DEL-MOD)
* y and x modified the same column of the same tuple   -> conflict (MOD-MOD)
* y and x inserted tuples with the same sort key       -> key conflict
* x inserts never conflict with y deletes ("never conflict with insert");
  re-inserting a key y deleted is legal.

Implementation note (documented erratum): the paper's printed Algorithm 8
advances ``δ`` but not ``j`` when a Ty delete meets a Tx insert at the same
SID, which would double-count the delete through the line-4 loop on the
next iteration, and its branch structure misroutes a Ty-insert/Tx-modify
collision into the modify-conflict check. We therefore implement the
specification above with explicit per-SID groups; the result is validated
by property tests against sequential ground-truth application
(tests/core/test_serialize.py).
"""

from __future__ import annotations

from itertools import groupby

from .types import KIND_DEL, KIND_INS, TransactionConflict, delta_of


def serialize(tx, ty):
    """Return T'x: ``tx`` re-based onto the table image produced by ``ty``.

    Raises :class:`TransactionConflict` on write-write conflicts. ``tx``
    and ``ty`` must be aligned (same base snapshot); neither is mutated.
    """
    out = tx.__class__(tx.schema)
    schema = tx.schema

    x_groups = _groups(tx)
    y_groups = _groups(ty)
    xi = yi = 0
    delta = 0  # net RID shift contributed by consumed y-entries
    while xi < len(x_groups):
        x_sid, x_chain = x_groups[xi]
        # Consume whole y-groups strictly before this x-group.
        while yi < len(y_groups) and y_groups[yi][0] < x_sid:
            delta += sum(delta_of(e.kind) for e in y_groups[yi][1])
            yi += 1
        if yi < len(y_groups) and y_groups[yi][0] == x_sid:
            y_chain = y_groups[yi][1]
            yi += 1
        else:
            y_chain = []
        delta += _emit_group(out, schema, tx, ty, x_sid, x_chain, y_chain,
                             delta)
        xi += 1
    return out


def _groups(pdt):
    """Entries grouped by SID, each with resolved payloads, in order."""
    grouped = []
    for sid, chain in groupby(pdt.iter_entries(), key=lambda e: e.sid):
        grouped.append((sid, list(chain)))
    return grouped


def _split(chain):
    ins = [e for e in chain if e.kind == KIND_INS]
    dels = [e for e in chain if e.kind == KIND_DEL]
    mods = [e for e in chain if e.kind >= 0]
    return ins, dels, mods


def _emit_group(out, schema, tx, ty, sid, x_chain, y_chain, delta):
    """Emit x's updates at ``sid`` re-based by ``delta`` plus same-SID
    y-effects; returns the delta contribution of the consumed y-chain."""
    x_ins, x_dels, x_mods = _split(x_chain)
    y_ins, y_dels, y_mods = _split(y_chain)

    # --- conflict detection on the shared stable tuple -------------------
    if y_dels and (x_dels or x_mods):
        raise TransactionConflict(
            f"tuple at stable position {sid} deleted by a concurrent "
            f"transaction"
        )
    if y_mods and x_dels:
        raise TransactionConflict(
            f"DEL-MOD conflict on stable position {sid}"
        )
    if y_mods and x_mods:
        y_cols = {e.kind for e in y_mods}
        overlap = sorted(y_cols & {e.kind for e in x_mods})
        if overlap:
            names = ", ".join(schema.columns[c].name for c in overlap)
            raise TransactionConflict(
                f"MOD-MOD conflict on stable position {sid}, column(s) "
                f"{names}"
            )

    # --- emit x inserts, interleaved with y inserts by sort key ----------
    y_ins_sks = [schema.sk_of(ty.values.get_insert(e.ref)) for e in y_ins]
    for entry in x_ins:
        row = list(tx.values.get_insert(entry.ref))
        sk = schema.sk_of(row)
        before = 0
        for y_sk in y_ins_sks:
            if y_sk == sk:
                raise TransactionConflict(
                    f"concurrent insert of identical key {sk!r}"
                )
            if y_sk < sk:
                before += 1
        out.append_entry(sid + delta + before, KIND_INS, row)

    # --- emit x delete / modifies of the stable tuple at this SID --------
    # y inserts at this SID precede the stable tuple, shifting it by one
    # position each; a y delete of it was already ruled a conflict above.
    shift = delta + len(y_ins)
    for entry in x_mods:
        out.append_entry(
            sid + shift, entry.kind,
            tx.values.get_modify(entry.kind, entry.ref),
        )
    for entry in x_dels:
        out.append_entry(
            sid + shift, KIND_DEL, tx.values.get_delete(entry.ref)
        )

    return sum(delta_of(e.kind) for e in y_chain)
