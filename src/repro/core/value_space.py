"""The PDT value space: side tables holding update payloads.

Per equation (7) of the paper, each PDT owns one *insert table* with full
new tuples, one *delete table* with the sort-key values of deleted stable
("ghost") tuples, and one single-column *modify table* per table column.
Leaf entries reference rows of these tables by integer offset.

In-place update rules (paper section 2.1, "Modify") mutate this space:
modifying an inserted tuple rewrites the insert row; modifying an already
modified column overwrites the modify slot; deleting an inserted tuple
frees its insert row.
"""

from __future__ import annotations

from ..storage.schema import Schema
from .types import KIND_DEL, KIND_INS, PDTError


class ValueSpace:
    """Payload storage for one PDT."""

    __slots__ = ("schema", "_ins", "_del", "_mods", "_free_ins")

    def __init__(self, schema: Schema):
        self.schema = schema
        self._ins: list[list | None] = []
        self._del: list[tuple] = []
        self._mods: dict[int, list] = {}
        self._free_ins = 0

    # -- insert table ------------------------------------------------------

    def add_insert(self, row) -> int:
        """Store a full new tuple; returns its offset."""
        values = list(row)
        if len(values) != len(self.schema):
            raise PDTError(
                f"insert arity {len(values)} != schema arity {len(self.schema)}"
            )
        self._ins.append(values)
        return len(self._ins) - 1

    def get_insert(self, ref: int) -> list:
        row = self._ins[ref]
        if row is None:
            raise PDTError(f"insert ref {ref} was freed")
        return row

    def modify_insert(self, ref: int, col_no: int, value) -> None:
        self.get_insert(ref)[col_no] = value

    def free_insert(self, ref: int) -> None:
        if self._ins[ref] is None:
            raise PDTError(f"double free of insert ref {ref}")
        self._ins[ref] = None
        self._free_ins += 1

    def insert_sk(self, ref: int) -> tuple:
        """Sort key of a stored insert tuple."""
        return self.schema.sk_of(self.get_insert(ref))

    # -- delete table ------------------------------------------------------

    def add_delete(self, sk_values) -> int:
        """Store the sort key of a deleted stable tuple; returns its offset."""
        sk = tuple(sk_values)
        if len(sk) != len(self.schema.sort_key):
            raise PDTError(
                f"delete key arity {len(sk)} != SK arity "
                f"{len(self.schema.sort_key)}"
            )
        self._del.append(sk)
        return len(self._del) - 1

    def get_delete(self, ref: int) -> tuple:
        return self._del[ref]

    # -- modify tables -----------------------------------------------------

    def add_modify(self, col_no: int, value) -> int:
        """Store a modified value for column ``col_no``; returns its offset."""
        if not 0 <= col_no < len(self.schema):
            raise PDTError(f"column number {col_no} out of range")
        table = self._mods.setdefault(col_no, [])
        table.append(value)
        return len(table) - 1

    def get_modify(self, col_no: int, ref: int):
        return self._mods[col_no][ref]

    def set_modify(self, col_no: int, ref: int, value) -> None:
        self._mods[col_no][ref] = value

    # -- generic access by entry kind ---------------------------------------

    def value_of(self, kind: int, ref: int):
        """Resolve an entry's payload: row list (INS), SK tuple (DEL), or
        modified value (MOD)."""
        if kind == KIND_INS:
            return self.get_insert(ref)
        if kind == KIND_DEL:
            return self.get_delete(ref)
        return self.get_modify(kind, ref)

    # -- bookkeeping ---------------------------------------------------------

    def copy(self) -> "ValueSpace":
        clone = ValueSpace(self.schema)
        clone._ins = [None if r is None else list(r) for r in self._ins]
        clone._del = list(self._del)
        clone._mods = {c: list(v) for c, v in self._mods.items()}
        clone._free_ins = self._free_ins
        return clone

    def clear(self) -> None:
        self._ins.clear()
        self._del.clear()
        self._mods.clear()
        self._free_ins = 0

    def live_inserts(self) -> int:
        return len(self._ins) - self._free_ins

    def stats(self) -> dict:
        return {
            "inserts": self.live_inserts(),
            "deletes": len(self._del),
            "modifies": sum(len(v) for v in self._mods.values()),
            "freed_inserts": self._free_ins,
        }
