"""MergeScan: merging a stable scan with positional updates (Algorithm 2).

Two variants are provided:

* :func:`merge_row_stream` — the tuple-at-a-time next() loop of the paper's
  Algorithm 2, kept close to the pseudocode; used for clarity and as the
  oracle in differential tests.
* :class:`BlockMerger` — the block-pipelined vectorized variant the paper's
  evaluation uses ("as the skip value is typically large, in many cases
  this allows to pass through entire blocks of tuples unmodified"). For
  every incoming block it first builds one *splice plan* — the runs of
  unmodified stable rows between consecutive PDT entries, plus the output
  offsets where inserts land and modifies scatter — and then replays that
  plan once per projected column with whole ``np.ndarray`` slice copies.
  No per-row Python loop runs on the data path, blocks with no PDT entries
  pass through untouched (zero copy), and sort-key columns are never read.

Both work on any object implementing the PDT interface (FlatPDT or the
tree PDT) and on any batch source, so stacked layers (Read/Write/Trans)
compose by feeding one merger's output into the next — the whole stack
pipelines blocks without ever materializing an intermediate row list.
"""

from __future__ import annotations

import numpy as np

from .types import KIND_DEL, KIND_INS, PDTError

#: Default number of rows per merged output block. Chosen to keep a block
#: of a handful of int64/float64 columns comfortably inside L2 while still
#: amortizing per-block Python overhead (see DESIGN.md).
MERGE_BLOCK_ROWS = 1024


def merge_row_stream(rows, pdt):
    """Yield the current table image given stable ``rows`` and a PDT.

    ``rows`` is any iterable of full tuples in SID order (the stable image,
    or the output of a lower merge layer, enabling stacking).
    """
    entries = pdt.iter_entries()
    entry = next(entries, None)
    sid = 0
    for row in rows:
        # Inserts at this SID precede the underlying tuple.
        while entry is not None and entry.sid == sid and entry.is_insert:
            yield tuple(pdt.values.get_insert(entry.ref))
            entry = next(entries, None)
        if entry is not None and entry.sid < sid:
            raise PDTError(f"unconsumed entry at sid {entry.sid} < scan {sid}")
        if entry is not None and entry.sid == sid and entry.is_delete:
            entry = next(entries, None)  # ghost: suppress the stable tuple
            sid += 1
            continue
        if entry is not None and entry.sid == sid and entry.is_modify:
            patched = list(row)
            while entry is not None and entry.sid == sid and entry.is_modify:
                patched[entry.kind] = pdt.values.get_modify(
                    entry.kind, entry.ref
                )
                entry = next(entries, None)
            yield tuple(patched)
        else:
            yield tuple(row)
        sid += 1
    # Trailing inserts positioned after the last underlying tuple.
    while entry is not None:
        if not entry.is_insert:
            raise PDTError(
                f"non-insert entry beyond table end: sid={entry.sid}"
            )
        yield tuple(pdt.values.get_insert(entry.ref))
        entry = next(entries, None)


class _SplicePlan:
    """One block's merge, described once and replayed per column.

    ``segments`` lists ``(out_start, src_start, src_stop)`` copy runs of
    stable rows (block-relative); ``ins_positions`` / ``ins_rows`` are the
    output offsets and full tuples of spliced inserts; ``mods`` maps a
    column name to parallel ``(out_offsets, values)`` lists. ``out_n`` is
    the merged block length. A plan that turns out to be the identity is
    marked ``passthrough`` so callers can skip all copying.
    """

    __slots__ = (
        "out_n", "segments", "ins_positions", "ins_rows", "mods",
        "passthrough",
    )

    def __init__(self):
        self.out_n = 0
        self.segments: list[tuple[int, int, int]] = []
        self.ins_positions: list[int] = []
        self.ins_rows: list = []
        self.mods: dict[str, tuple[list[int], list]] = {}
        self.passthrough = False


class BlockMerger:
    """Vectorized positional merge of one PDT layer over a batch stream."""

    def __init__(self, pdt, columns):
        self.pdt = pdt
        self.columns = list(columns)
        self.schema = pdt.schema
        self._col_indexes = [
            self.schema.column_index(c) for c in self.columns
        ]
        self._wanted = frozenset(self.columns)

    def merge_batches(
        self,
        batches,
        start_rid: int | None = None,
        drain_tail: bool = True,
        start_sid: int = 0,
        stop_sid: int | None = None,
    ):
        """Yield ``(first_rid, {column: ndarray})`` with updates applied.

        ``batches`` yields ``(first_sid, {column: ndarray})`` in SID order;
        the SID domain of this merger's PDT must be the position domain of
        the incoming stream. ``start_sid`` is where the scan begins in that
        domain (entries before it are skipped with a logarithmic seek);
        ``start_rid`` overrides the output position of the first produced
        row (defaults to the RID corresponding to ``start_sid``).
        ``drain_tail`` controls whether inserts positioned after the last
        incoming tuple are emitted — True for scans reaching the end of the
        underlying domain, False for range scans that stop mid-table.
        ``stop_sid`` (range scans only; ignored when draining the tail)
        bounds the PDT entry walk to the scanned range.
        """
        if not self.columns:
            raise ValueError("merge requires at least one output column")
        sids, kinds, refs = self._entries_from(
            start_sid, stop_sid if not drain_tail else None
        )
        m = len(sids)
        i = 0
        out_rid = None
        stream_end = start_sid
        for first_sid, arrays in batches:
            n = len(arrays[self.columns[0]])
            stop_sid = first_sid + n
            stream_end = stop_sid
            if out_rid is None:
                base = first_sid + self.pdt.delta_before_sid(first_sid)
                out_rid = base if start_rid is None else start_rid
                # Skip entries strictly before the scanned range.
                while i < m and sids[i] < first_sid:
                    i += 1
            if i >= m or sids[i] >= stop_sid:
                # Fast path: no PDT entry lands in this block — the whole
                # block passes through unmodified, straight from storage.
                if n:
                    yield out_rid, arrays
                    out_rid += n
                continue
            plan, i = self._plan(sids, kinds, refs, i, first_sid, n)
            if plan.passthrough:
                if n:
                    yield out_rid, arrays
                    out_rid += n
                continue
            if plan.out_n:
                yield out_rid, self._apply(plan, arrays)
                out_rid += plan.out_n
        if not drain_tail:
            return
        # Drain trailing inserts (sid == end of the underlying domain).
        tail = []
        while i < m:
            if kinds[i] != KIND_INS or sids[i] < stream_end:
                raise PDTError(
                    f"non-insert entry beyond scan end: sid={sids[i]}"
                )
            tail.append(refs[i])
            i += 1
        if tail:
            if out_rid is None:
                out_rid = (
                    stream_end + self.pdt.delta_before_sid(stream_end)
                    if start_rid is None
                    else start_rid
                )
            yield out_rid, self._insert_rows_only(tail)

    # -- internals -----------------------------------------------------------

    def _entries_from(self, start_sid: int, stop_sid: int | None = None):
        """Bulk ``(sids, kinds, refs)`` of the PDT in ``[start_sid,
        stop_sid)``.

        Uses the PDT's :meth:`entry_lists` fast path when the structure
        provides one, falling back to generic entry iteration for any
        other object implementing the PDT interface.
        """
        bulk = getattr(self.pdt, "entry_lists", None)
        if bulk is not None:
            return bulk(start_sid, stop_sid)
        sids: list[int] = []
        kinds: list[int] = []
        refs: list[int] = []
        for entry in self.pdt.iter_entries():
            if entry.sid < start_sid:
                continue
            if stop_sid is not None and entry.sid >= stop_sid:
                break
            sids.append(entry.sid)
            kinds.append(entry.kind)
            refs.append(entry.ref)
        return sids, kinds, refs

    def _plan(self, sids, kinds, refs, i: int, first_sid: int, n: int):
        """Consume this block's entries into a :class:`_SplicePlan`.

        Walks the entry arrays exactly once; entries are in (SID, RID)
        order, so inserts at a SID precede that tuple's DEL or MOD chain
        and a delete's ghost can never be modified afterwards — which is
        what lets ``src`` advance monotonically.
        """
        plan = _SplicePlan()
        segments = plan.segments
        stop_sid = first_sid + n
        out_pos = 0
        src = 0
        values = self.pdt.values
        schema_cols = self.schema.columns
        wanted = self._wanted
        m = len(sids)
        while i < m:
            sid = sids[i]
            if sid >= stop_sid:
                break
            rel = sid - first_sid
            kind = kinds[i]
            if kind == KIND_INS:
                if rel > src:
                    segments.append((out_pos, src, rel))
                    out_pos += rel - src
                    src = rel
                plan.ins_positions.append(out_pos)
                plan.ins_rows.append(values.get_insert(refs[i]))
                out_pos += 1
            elif kind == KIND_DEL:
                if rel > src:
                    segments.append((out_pos, src, rel))
                    out_pos += rel - src
                src = rel + 1
            else:
                name = schema_cols[kind].name
                if name in wanted:
                    slot = plan.mods.get(name)
                    if slot is None:
                        slot = plan.mods[name] = ([], [])
                    slot[0].append(out_pos + (rel - src))
                    slot[1].append(values.get_modify(kind, refs[i]))
            i += 1
        if src < n:
            segments.append((out_pos, src, n))
            out_pos += n - src
        plan.out_n = out_pos
        plan.passthrough = (
            not plan.ins_rows
            and not plan.mods
            and len(segments) == 1
            and segments[0] == (0, 0, n)
        )
        return plan, i

    def _apply(self, plan: _SplicePlan, arrays):
        """Replay one splice plan against every projected column."""
        out = {}
        ins_idx = None
        for col, col_idx in zip(self.columns, self._col_indexes):
            src_arr = arrays[col]
            dst = np.empty(plan.out_n, dtype=src_arr.dtype)
            for out_start, src_start, src_stop in plan.segments:
                dst[out_start:out_start + (src_stop - src_start)] = \
                    src_arr[src_start:src_stop]
            col_mods = plan.mods.get(col)
            if col_mods is not None:
                idx, vals = col_mods
                if dst.dtype == object:
                    for i, v in zip(idx, vals):
                        dst[i] = v
                else:
                    dst[np.asarray(idx, dtype=np.intp)] = \
                        np.asarray(vals, dtype=dst.dtype)
            if plan.ins_rows:
                if ins_idx is None:
                    ins_idx = np.asarray(plan.ins_positions, dtype=np.intp)
                vals = [row[col_idx] for row in plan.ins_rows]
                if dst.dtype == object:
                    for i, v in zip(plan.ins_positions, vals):
                        dst[i] = v
                else:
                    dst[ins_idx] = np.asarray(vals, dtype=dst.dtype)
            out[col] = dst
        return out

    def _insert_rows_only(self, refs):
        out = {}
        rows = [self.pdt.values.get_insert(r) for r in refs]
        for col, col_idx in zip(self.columns, self._col_indexes):
            dtype = self.schema.dtype_of(col).numpy_dtype
            if dtype == object:
                arr = np.empty(len(rows), dtype=object)
                arr[:] = [row[col_idx] for row in rows]
            else:
                arr = np.asarray([row[col_idx] for row in rows], dtype=dtype)
            out[col] = arr
        return out


def reblock(stream, block_rows: int = MERGE_BLOCK_ROWS):
    """Normalize a ``(first_pos, {col: ndarray})`` stream to fixed-size blocks.

    Merged streams produce blocks whose sizes drift with the local net
    delta (deletes shrink a block, inserts grow it). Consumers that want a
    steady block size — operator pipelines sized for a cache budget, the
    fixed-stride kernels in :mod:`repro.engine` — wrap the stream in
    ``reblock``. Full input blocks that already match ``block_rows`` pass
    through without copying; only stragglers are stitched.
    """
    if block_rows <= 0:
        raise ValueError("block_rows must be positive")
    pending: list[dict] = []  # buffered partial batches, in order
    pending_rows = 0
    pos = None

    def flush(count):
        nonlocal pending, pending_rows, pos
        take, taken = [], 0
        while taken < count:
            head = pending[0]
            head_n = len(next(iter(head.values())))
            if taken + head_n <= count:
                take.append(head)
                taken += head_n
                pending.pop(0)
            else:
                split = count - taken
                take.append({c: a[:split] for c, a in head.items()})
                pending[0] = {c: a[split:] for c, a in head.items()}
                taken = count
        if len(take) == 1:
            block = take[0]
        else:
            block = {
                c: np.concatenate([piece[c] for piece in take])
                for c in take[0]
            }
        out = (pos, block)
        pos += count
        pending_rows -= count
        return out

    for first_pos, arrays in stream:
        n = len(next(iter(arrays.values())))
        if n == 0:
            continue
        if pos is None:
            pos = first_pos
        if not pending and n == block_rows:
            yield pos, arrays  # aligned full block: zero-copy pass-through
            pos += n
            continue
        pending.append(arrays)
        pending_rows += n
        while pending_rows >= block_rows:
            yield flush(block_rows)
    if pending_rows:
        yield flush(pending_rows)


def merge_scan(stable, pdt, columns=None, start=0, stop=None,
               batch_rows=MERGE_BLOCK_ROWS):
    """Block-pipelined MergeScan over a stable table and one PDT layer.

    Yields ``(first_rid, {column: ndarray})``. Only the requested columns
    are read from stable storage — positional merging never needs the sort
    key (the paper's core advantage) — and stable blocks untouched by the
    PDT are passed through as direct references to the decoded storage
    blocks.
    """
    if columns is None:
        columns = stable.schema.column_names
    merger = BlockMerger(pdt, columns)
    batches = stable.scan(columns=columns, start=start, stop=stop,
                          batch_rows=batch_rows)
    full_to_end = stop is None or stop >= stable.num_rows
    yield from merger.merge_batches(
        batches,
        drain_tail=full_to_end,
        start_sid=min(start, stable.num_rows),
        stop_sid=None if full_to_end else stop,
    )


def merge_rows(stable_rows, pdt) -> list[tuple]:
    """Materialized tuple-at-a-time merge (testing convenience)."""
    return list(merge_row_stream(stable_rows, pdt))
