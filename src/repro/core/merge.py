"""MergeScan: merging a stable scan with positional updates (Algorithm 2).

Two variants are provided:

* :func:`merge_row_stream` — the tuple-at-a-time next() loop of the paper's
  Algorithm 2, kept close to the pseudocode; used for clarity and as a
  second implementation in differential tests.
* :class:`BlockMerger` — the block-oriented pipelined variant the paper's
  evaluation uses ("as the skip value is typically large, in many cases
  this allows to pass through entire blocks of tuples unmodified"). It
  consumes batches of column vectors and applies deletes as masks, modifies
  as scatter writes, and inserts via positional ``np.insert`` — never
  touching sort-key values.

Both work on any object implementing the PDT interface (FlatPDT or the
tree PDT) and on any batch source, so stacked layers (Read/Write/Trans)
compose by feeding one merger's output into the next.
"""

from __future__ import annotations

import numpy as np

from .types import PDTError


def merge_row_stream(rows, pdt):
    """Yield the current table image given stable ``rows`` and a PDT.

    ``rows`` is any iterable of full tuples in SID order (the stable image,
    or the output of a lower merge layer, enabling stacking).
    """
    entries = pdt.iter_entries()
    entry = next(entries, None)
    sid = 0
    for row in rows:
        # Inserts at this SID precede the underlying tuple.
        while entry is not None and entry.sid == sid and entry.is_insert:
            yield tuple(pdt.values.get_insert(entry.ref))
            entry = next(entries, None)
        if entry is not None and entry.sid < sid:
            raise PDTError(f"unconsumed entry at sid {entry.sid} < scan {sid}")
        if entry is not None and entry.sid == sid and entry.is_delete:
            entry = next(entries, None)  # ghost: suppress the stable tuple
            sid += 1
            continue
        if entry is not None and entry.sid == sid and entry.is_modify:
            patched = list(row)
            while entry is not None and entry.sid == sid and entry.is_modify:
                patched[entry.kind] = pdt.values.get_modify(
                    entry.kind, entry.ref
                )
                entry = next(entries, None)
            yield tuple(patched)
        else:
            yield tuple(row)
        sid += 1
    # Trailing inserts positioned after the last underlying tuple.
    while entry is not None:
        if not entry.is_insert:
            raise PDTError(
                f"non-insert entry beyond table end: sid={entry.sid}"
            )
        yield tuple(pdt.values.get_insert(entry.ref))
        entry = next(entries, None)


class BlockMerger:
    """Vectorized positional merge of one PDT layer over a batch stream."""

    def __init__(self, pdt, columns):
        self.pdt = pdt
        self.columns = list(columns)
        self.schema = pdt.schema
        self._col_indexes = [
            self.schema.column_index(c) for c in self.columns
        ]

    def merge_batches(
        self,
        batches,
        start_rid: int | None = None,
        drain_tail: bool = True,
        start_sid: int = 0,
    ):
        """Yield ``(first_rid, {column: ndarray})`` with updates applied.

        ``batches`` yields ``(first_sid, {column: ndarray})`` in SID order;
        the SID domain of this merger's PDT must be the position domain of
        the incoming stream. ``start_sid`` is where the scan begins in that
        domain (entries before it are skipped with a logarithmic seek);
        ``start_rid`` overrides the output position of the first produced
        row (defaults to the RID corresponding to ``start_sid``).
        ``drain_tail`` controls whether inserts positioned after the last
        incoming tuple are emitted — True for scans reaching the end of the
        underlying domain, False for range scans that stop mid-table.
        """
        if not self.columns:
            raise ValueError("merge requires at least one output column")
        entries = self.pdt.iter_entries(start_sid=start_sid)
        entry = next(entries, None)
        out_rid = None
        stream_end = start_sid
        for first_sid, arrays in batches:
            n = len(arrays[self.columns[0]]) if self.columns else 0
            stop_sid = first_sid + n
            stream_end = stop_sid
            if out_rid is None:
                base = first_sid + self.pdt.delta_before_sid(first_sid)
                out_rid = base if start_rid is None else start_rid
                # Skip entries strictly before the scanned range.
                while entry is not None and entry.sid < first_sid:
                    entry = next(entries, None)
            deletes = []
            inserts = []  # (sid, ref) in chain order
            mods: dict[str, list] = {}
            while entry is not None and entry.sid < stop_sid:
                if entry.is_insert:
                    inserts.append((entry.sid, entry.ref))
                elif entry.is_delete:
                    deletes.append(entry.sid)
                else:
                    name = self.schema.columns[entry.kind].name
                    if name in self.columns:
                        mods.setdefault(name, []).append(
                            (
                                entry.sid,
                                self.pdt.values.get_modify(
                                    entry.kind, entry.ref
                                ),
                            )
                        )
                entry = next(entries, None)
            merged = self._apply(
                arrays, first_sid, n, deletes, inserts, mods
            )
            out_n = len(merged[self.columns[0]]) if self.columns else 0
            if out_n:
                yield out_rid, merged
                out_rid += out_n
        if not drain_tail:
            return
        # Drain trailing inserts (sid == end of the underlying domain).
        tail = []
        while entry is not None:
            if not entry.is_insert or entry.sid < stream_end:
                raise PDTError(
                    f"non-insert entry beyond scan end: sid={entry.sid}"
                )
            tail.append(entry.ref)
            entry = next(entries, None)
        if tail:
            if out_rid is None:
                out_rid = (
                    stream_end + self.pdt.delta_before_sid(stream_end)
                    if start_rid is None
                    else start_rid
                )
            arrays = self._insert_rows_only(tail)
            yield out_rid, arrays

    # -- internals -----------------------------------------------------------

    def _apply(self, arrays, first_sid, n, deletes, inserts, mods):
        keep = None
        if deletes:
            keep = np.ones(n, dtype=bool)
            keep[np.asarray(deletes) - first_sid] = False
        out = {}
        ins_positions, ins_rows = self._insert_layout(
            inserts, first_sid, n, keep
        )
        for col, col_idx in zip(self.columns, self._col_indexes):
            arr = arrays[col]
            col_mods = mods.get(col)
            if col_mods is not None:
                arr = arr.copy()
                idx = np.asarray([m[0] for m in col_mods]) - first_sid
                vals = [m[1] for m in col_mods]
                if arr.dtype == object:
                    for i, v in zip(idx, vals):
                        arr[i] = v
                else:
                    arr[idx] = np.asarray(vals, dtype=arr.dtype)
            if keep is not None:
                arr = arr[keep]
            if ins_rows:
                values = [row[col_idx] for row in ins_rows]
                if arr.dtype == object:
                    merged = np.empty(len(arr) + len(values), dtype=object)
                    mask = np.ones(len(merged), dtype=bool)
                    where = ins_positions + np.arange(len(ins_positions))
                    mask[where] = False
                    merged[~mask] = values
                    merged[mask] = arr
                    arr = merged
                else:
                    arr = np.insert(arr, ins_positions, values)
            out[col] = arr
        return out

    def _insert_layout(self, inserts, first_sid, n, keep):
        if not inserts:
            return None, []
        if keep is None:
            kept_before = None
        else:
            kept_before = np.zeros(n + 1, dtype=np.int64)
            np.cumsum(keep, out=kept_before[1:])
        positions = []
        rows = []
        for sid, ref in inserts:
            rel = sid - first_sid
            if kept_before is None:
                positions.append(rel)
            else:
                positions.append(int(kept_before[rel]))
            rows.append(self.pdt.values.get_insert(ref))
        return np.asarray(positions, dtype=np.int64), rows

    def _insert_rows_only(self, refs):
        out = {}
        rows = [self.pdt.values.get_insert(r) for r in refs]
        for col, col_idx in zip(self.columns, self._col_indexes):
            dtype = self.schema.dtype_of(col).numpy_dtype
            if dtype == object:
                arr = np.empty(len(rows), dtype=object)
                arr[:] = [row[col_idx] for row in rows]
            else:
                arr = np.asarray([row[col_idx] for row in rows], dtype=dtype)
            out[col] = arr
        return out


def merge_scan(stable, pdt, columns=None, start=0, stop=None, batch_rows=1024):
    """Block-oriented MergeScan over a stable table and one PDT layer.

    Yields ``(first_rid, {column: ndarray})``. Only the requested columns
    are read from stable storage — positional merging never needs the sort
    key (the paper's core advantage).
    """
    if columns is None:
        columns = stable.schema.column_names
    merger = BlockMerger(pdt, columns)
    batches = stable.scan(columns=columns, start=start, stop=stop,
                          batch_rows=batch_rows)
    full_to_end = stop is None or stop >= stable.num_rows
    yield from merger.merge_batches(
        batches,
        drain_tail=full_to_end,
        start_sid=min(start, stable.num_rows),
    )


def merge_rows(stable_rows, pdt) -> list[tuple]:
    """Materialized tuple-at-a-time merge (testing convenience)."""
    return list(merge_row_stream(stable_rows, pdt))
