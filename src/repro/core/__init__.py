"""The paper's primary contribution: Positional Delta Trees and algorithms.

Exports the PDT data structure (tree and flat reference forms), the value
space, MergeScan in both tuple-at-a-time and block-oriented forms, and the
Propagate / Serialize transaction-management transformations.
"""

from .flat_pdt import FlatPDT
from .merge import (
    BlockMerger,
    MERGE_BLOCK_ROWS,
    merge_row_stream,
    merge_rows,
    merge_scan,
    reblock,
)
from .pdt import PDT
from .propagate import MERGE_FOLD_RATIO, propagate, propagate_batch
from .serialize import serialize
from .shadow import ShadowTable
from .stack import (
    image_rows,
    merge_rows_layers,
    merge_scan_layers,
    total_delta,
)
from .types import (
    Entry,
    KIND_DEL,
    KIND_INS,
    PDTError,
    TransactionConflict,
    delta_of,
    is_modify,
    kind_name,
)
from .value_space import ValueSpace

__all__ = [
    "BlockMerger",
    "Entry",
    "MERGE_BLOCK_ROWS",
    "reblock",
    "FlatPDT",
    "KIND_DEL",
    "KIND_INS",
    "PDT",
    "PDTError",
    "ShadowTable",
    "TransactionConflict",
    "ValueSpace",
    "delta_of",
    "image_rows",
    "is_modify",
    "kind_name",
    "merge_row_stream",
    "merge_rows",
    "merge_rows_layers",
    "merge_scan",
    "merge_scan_layers",
    "MERGE_FOLD_RATIO",
    "propagate",
    "propagate_batch",
    "serialize",
    "total_delta",
]
