"""FlatPDT: a reference positional-delta structure on a flat sorted list.

Identical update-chain semantics to the tree PDT (:mod:`repro.core.pdt`)
with O(n) operations and obviously-correct linear scans. It exists for two
reasons: (1) it is the differential-testing oracle the tree is validated
against, and (2) Merge/Propagate/Serialize are written against the shared
interface, so they can be exercised on both implementations.
"""

from __future__ import annotations

from ..storage.schema import Schema
from .types import (
    Entry,
    KIND_DEL,
    KIND_INS,
    PDTError,
    delta_of,
    is_modify,
)
from .value_space import ValueSpace


class FlatPDT:
    """Positional delta structure on a flat ``(sid, kind, ref)`` list."""

    def __init__(self, schema: Schema):
        self.schema = schema
        self.values = ValueSpace(schema)
        self._entries: list[list] = []  # [sid, kind, ref], (SID, RID)-ordered

    # -- interface shared with the tree PDT ---------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def count(self) -> int:
        return len(self._entries)

    def is_empty(self) -> bool:
        return not self._entries

    def total_delta(self) -> int:
        return sum(delta_of(kind) for _, kind, _ in self._entries)

    def iter_entries(self):
        """Yield :class:`Entry` records in (SID, RID) order."""
        delta = 0
        for sid, kind, ref in self._entries:
            yield Entry(sid, sid + delta, kind, ref)
            delta += delta_of(kind)

    def entry_lists(self, start_sid: int = 0, stop_sid: int | None = None):
        """Parallel ``(sids, kinds, refs)`` lists of entries with SID in
        ``[start_sid, stop_sid)`` (bulk interface shared with the tree
        PDT)."""
        sids: list[int] = []
        kinds: list[int] = []
        refs: list[int] = []
        for sid, kind, ref in self._entries:
            if sid < start_sid:
                continue
            if stop_sid is not None and sid >= stop_sid:
                break
            sids.append(sid)
            kinds.append(kind)
            refs.append(ref)
        return sids, kinds, refs

    def value_of(self, entry: Entry):
        return self.values.value_of(entry.kind, entry.ref)

    def delta_before_sid(self, sid: int) -> int:
        """Net insert/delete delta of all entries with SID strictly below
        ``sid`` — the RID shift at the start of a SID-range scan."""
        delta = 0
        for entry_sid, kind, _ in self._entries:
            if entry_sid >= sid:
                break
            delta += delta_of(kind)
        return delta

    def append_entry(self, sid: int, kind: int, payload) -> None:
        """Append an entry known to sort after all existing ones.

        Used by Serialize, which emits entries in order; ``payload`` is a
        full row (INS), an SK tuple (DEL), or a single value (MOD).
        """
        if self._entries and self._entries[-1][0] > sid:
            raise PDTError(
                f"append out of order: sid {sid} < {self._entries[-1][0]}"
            )
        if kind == KIND_INS:
            ref = self.values.add_insert(payload)
        elif kind == KIND_DEL:
            ref = self.values.add_delete(payload)
        else:
            ref = self.values.add_modify(kind, payload)
        self._entries.append([sid, kind, ref])

    def bulk_append_entries(self, triples) -> None:
        """Ingest a whole SID-ordered ``(sid, kind, payload)`` run at once
        (bulk interface shared with the tree PDT)."""
        last = self._entries[-1][0] if self._entries else None
        for sid, kind, payload in triples:
            if last is not None and sid < last:
                raise PDTError(f"bulk append out of order: sid {sid} < {last}")
            last = sid
            if kind == KIND_INS:
                ref = self.values.add_insert(payload)
            elif kind == KIND_DEL:
                ref = self.values.add_delete(payload)
            else:
                ref = self.values.add_modify(kind, payload)
            self._entries.append([sid, kind, ref])

    # -- update operations ---------------------------------------------------

    def add_insert(self, sid: int, rid: int, row) -> None:
        """Record the insertion of ``row`` as the new tuple at ``rid``.

        ``sid`` locates the insert relative to the stable image (including
        ghosts) and must equal ``rid`` minus the delta accumulated before
        the insertion point (asserted).
        """
        pos, delta = self._position_for_insert(sid, rid)
        if rid - delta != sid:
            raise PDTError(
                f"inconsistent insert: sid={sid} rid={rid} delta={delta}"
            )
        ref = self.values.add_insert(row)
        self._entries.insert(pos, [sid, KIND_INS, ref])

    def add_modify(self, rid: int, col_no: int, value) -> None:
        """Record a modification of column ``col_no`` of the tuple at ``rid``."""
        pos, delta = self._position_for_rid(rid)
        pos, delta = self._skip_ghosts(pos, delta, rid)
        n = len(self._entries)
        if pos < n and self._rid_at(pos, delta) == rid:
            sid, kind, ref = self._entries[pos]
            if kind == KIND_INS:
                self.values.modify_insert(ref, col_no, value)
                return
            if kind == KIND_DEL:
                raise PDTError(f"modify of deleted tuple at rid {rid}")
            # Walk the modify chain of this tuple, kept ordered by col_no.
            while pos < n and self._rid_at(pos, delta) == rid:
                sid, kind, ref = self._entries[pos]
                if not is_modify(kind) or kind > col_no:
                    break
                if kind == col_no:
                    self.values.set_modify(col_no, ref, value)
                    return
                pos += 1
        ref = self.values.add_modify(col_no, value)
        self._entries.insert(pos, [rid - delta, col_no, ref])

    def add_delete(self, rid: int, sk_values) -> None:
        """Record the deletion of the live tuple at ``rid``.

        Deleting a PDT-resident insert removes it entirely; deleting a
        stable tuple with modify entries replaces them all with one DEL.
        """
        pos, delta = self._position_for_rid(rid)
        pos, delta = self._skip_ghosts(pos, delta, rid)
        n = len(self._entries)
        if pos < n and self._rid_at(pos, delta) == rid:
            sid, kind, ref = self._entries[pos]
            if kind == KIND_INS:
                self.values.free_insert(ref)
                del self._entries[pos]
                return
            # Remove all modify entries of this stable tuple.
            while pos < len(self._entries) and self._rid_at(pos, delta) == rid:
                _, kind, _ = self._entries[pos]
                if not is_modify(kind):
                    break
                del self._entries[pos]
        ref = self.values.add_delete(sk_values)
        self._entries.insert(pos, [rid - delta, KIND_DEL, ref])

    def sk_rid_to_sid(self, sk_values, rid: int) -> int:
        """SID where a tuple with key ``sk_values`` inserted at ``rid`` goes.

        Skips ghost tuples at the boundary whose (deleted) keys are smaller
        than the new key, so SK <=> SID sparse indexes stay valid (paper
        Algorithm 6).
        """
        sk = tuple(sk_values)
        pos, delta = self._position_for_rid(rid)
        while (
            pos < len(self._entries)
            and self._entries[pos][1] == KIND_DEL
            and self._rid_at(pos, delta) == rid
            and sk > self.values.get_delete(self._entries[pos][2])
        ):
            pos += 1
            delta -= 1
        return rid - delta

    # -- RID <=> SID mapping ---------------------------------------------------

    def rid_to_sid(self, rid: int) -> int:
        """Stable ID of the live tuple currently at position ``rid``."""
        pos, delta = self._position_for_rid(rid)
        pos, delta = self._skip_ghosts(pos, delta, rid)
        if pos < len(self._entries) and self._rid_at(pos, delta) == rid:
            return self._entries[pos][0]
        return rid - delta

    def sid_to_rid(self, sid: int) -> int:
        """Current position of stable tuple ``sid`` (equation (3))."""
        delta = self.delta_before_sid(sid)
        for entry_sid, kind, _ in self._entries:
            if entry_sid < sid:
                continue
            if entry_sid != sid or kind != KIND_INS:
                break
            delta += 1
        return sid + delta

    # -- housekeeping ----------------------------------------------------------

    def copy(self) -> "FlatPDT":
        clone = FlatPDT(self.schema)
        clone.values = self.values.copy()
        clone._entries = [list(e) for e in self._entries]
        return clone

    def clear(self) -> None:
        self._entries.clear()
        self.values.clear()

    def memory_usage(self) -> int:
        """Bytes under the paper's C cost model: 16 bytes per update entry."""
        return 16 * len(self._entries)

    def check_invariants(self) -> None:
        """Validate ordering and chain-shape invariants (see DESIGN.md)."""
        prev_sid = prev_rid = None
        delta = 0
        for sid, kind, ref in self._entries:
            rid = sid + delta
            if prev_sid is not None:
                if sid < prev_sid:
                    raise PDTError(f"sid order violated: {sid} < {prev_sid}")
                if rid < prev_rid:
                    raise PDTError(f"rid order violated: {rid} < {prev_rid}")
            self.values.value_of(kind, ref)  # ref must resolve
            prev_sid, prev_rid = sid, rid
            delta += delta_of(kind)
        self._check_chains()

    def _check_chains(self) -> None:
        entries = list(self.iter_entries())
        i = 0
        while i < len(entries):
            j = i
            while j < len(entries) and entries[j].sid == entries[i].sid:
                j += 1
            chain = entries[i:j]
            terminal = [e for e in chain if not e.is_insert]
            for k, e in enumerate(chain):
                if e.is_insert and k > 0 and not chain[k - 1].is_insert:
                    # INS after non-INS at same sid is legal only when the
                    # non-INS is a ghost chain element with smaller rid.
                    if chain[k - 1].rid > e.rid:
                        raise PDTError("insert ordered after later entry")
            mods = [e for e in terminal if e.is_modify]
            cols = [e.kind for e in mods]
            if cols != sorted(set(cols)):
                raise PDTError(f"modify chain columns not unique/sorted: {cols}")
            dels = [e for e in terminal if e.is_delete]
            if len(dels) > 1 and any(
                d1.rid == d2.rid and d1.sid == d2.sid
                for d1, d2 in zip(dels, dels[1:])
            ):
                raise PDTError("duplicate delete of the same stable tuple")
            i = j

    # -- internals ---------------------------------------------------------------

    def _rid_at(self, pos: int, delta: int) -> int:
        return self._entries[pos][0] + delta

    def _position_for_rid(self, rid: int):
        """Leftmost entry position whose current RID is >= ``rid``,
        with the delta accumulated before it."""
        delta = 0
        for pos, (sid, kind, _) in enumerate(self._entries):
            if sid + delta >= rid:
                return pos, delta
            delta += delta_of(kind)
        return len(self._entries), delta

    def _skip_ghosts(self, pos: int, delta: int, rid: int):
        """Advance past ghost (DEL) entries sharing ``rid``: they precede
        the live tuple the caller is addressing."""
        while (
            pos < len(self._entries)
            and self._entries[pos][1] == KIND_DEL
            and self._rid_at(pos, delta) == rid
        ):
            pos += 1
            delta -= 1
        return pos, delta

    def _position_for_insert(self, sid: int, rid: int):
        """Skip loop of Algorithm 3: find where an insert at (sid, rid)
        belongs, returning (position, delta before position)."""
        delta = 0
        pos = 0
        for entry_sid, kind, _ in self._entries:
            if entry_sid < sid or entry_sid + delta < rid:
                delta += delta_of(kind)
                pos += 1
            else:
                break
        return pos, delta

    def __repr__(self) -> str:
        return f"FlatPDT(entries={len(self._entries)})"
