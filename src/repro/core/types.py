"""Shared constants and entry records for positional delta structures.

The paper's leaf triplet is ``(SID, type, value)`` where *type* is ``INS``,
``DEL`` or — for modifications — the column number (section 3.1's C layout
packs this into 16 bits). We mirror that: an entry *kind* is the integer
column number for a modify, or one of the negative sentinels below.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Kind sentinel for newly inserted tuples.
KIND_INS = -1
#: Kind sentinel for deletions of stable tuples ("ghosts").
KIND_DEL = -2


def is_modify(kind: int) -> bool:
    """True when ``kind`` denotes a column modification (kind == col_no)."""
    return kind >= 0


def delta_of(kind: int) -> int:
    """Contribution of an update entry to the running RID−SID delta."""
    if kind == KIND_INS:
        return 1
    if kind == KIND_DEL:
        return -1
    return 0


def kind_name(kind: int) -> str:
    if kind == KIND_INS:
        return "ins"
    if kind == KIND_DEL:
        return "del"
    return f"mod(col={kind})"


@dataclass(frozen=True)
class Entry:
    """A materialized update entry, used for iteration and testing.

    ``rid`` is the entry's current row position: ``sid`` plus the
    accumulated delta of all preceding entries (equation (3) of the paper).
    ``ref`` indexes the value space table selected by ``kind``.
    """

    sid: int
    rid: int
    kind: int
    ref: int

    @property
    def is_insert(self) -> bool:
        return self.kind == KIND_INS

    @property
    def is_delete(self) -> bool:
        return self.kind == KIND_DEL

    @property
    def is_modify(self) -> bool:
        return self.kind >= 0

    def __repr__(self) -> str:
        return f"Entry(sid={self.sid}, rid={self.rid}, {kind_name(self.kind)})"


class TransactionConflict(Exception):
    """Write-write conflict detected by Serialize; the transaction aborts."""


class PDTError(RuntimeError):
    """Internal consistency violation in a positional delta structure."""
