"""Ground-truth row-store model of an updatable ordered table.

:class:`ShadowTable` maintains the *current table image* the naive way — a
Python list of slots updated in place — including ghost slots for deleted
stable tuples, exactly mirroring the paper's SID/ghost semantics (section
2, "RID vs. SID"). It is deliberately simple (O(n) per operation) and
serves as the oracle that every PDT implementation and MergeScan variant is
property-tested against.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..storage.schema import Schema


@dataclass
class _Slot:
    """One physical slot: a live row, or a ghost left by a deletion."""

    sid: int
    row: list | None  # None = ghost
    sk: tuple  # sort key (kept for ghosts)
    stable: bool  # part of TABLE0 (ghosts always are)

    @property
    def is_ghost(self) -> bool:
        return self.row is None


class ShadowTable:
    """Oracle for positional update semantics over an ordered table."""

    def __init__(self, schema: Schema, stable_rows):
        self.schema = schema
        self.stable_count = 0
        self.slots: list[_Slot] = []
        for row in stable_rows:
            row = list(row)
            self.slots.append(
                _Slot(self.stable_count, row, schema.sk_of(row), stable=True)
            )
            self.stable_count += 1

    # -- views ---------------------------------------------------------------

    def rows(self) -> list[tuple]:
        """Live rows in order — the expected MergeScan output."""
        return [tuple(s.row) for s in self.slots if not s.is_ghost]

    def live_count(self) -> int:
        return sum(1 for s in self.slots if not s.is_ghost)

    def row_at(self, rid: int) -> tuple:
        return tuple(self.slots[self._slot_of_rid(rid)].row)

    def sids(self) -> list[int]:
        """SIDs of live rows in order (tests PDT SID assignment)."""
        return [s.sid for s in self.slots if not s.is_ghost]

    # -- update operations (by live RID) --------------------------------------

    def insert(self, rid: int, row) -> None:
        """Insert ``row`` so it becomes the live tuple at position ``rid``.

        The new slot is placed among any ghost slots at the boundary
        according to sort-key order (ghost-respecting insert semantics).
        """
        row = list(self.schema.coerce_row(row))
        sk = self.schema.sk_of(row)
        idx = self._insertion_slot(rid, sk)
        sid = self.slots[idx].sid if idx < len(self.slots) else self.stable_count
        self.slots.insert(idx, _Slot(sid, row, sk, stable=False))

    def delete(self, rid: int) -> None:
        """Delete the live tuple at ``rid``; stable tuples become ghosts."""
        idx = self._slot_of_rid(rid)
        slot = self.slots[idx]
        if slot.stable:
            slot.row = None  # becomes a ghost, keeps sid and sk
        else:
            del self.slots[idx]

    def modify(self, rid: int, col_no: int, value) -> None:
        """Modify one non-sort-key attribute of the live tuple at ``rid``."""
        name = self.schema.columns[col_no].name
        if self.schema.is_sk_column(name):
            raise ValueError(
                "sort-key modifies must be decomposed into delete+insert"
            )
        idx = self._slot_of_rid(rid)
        self.slots[idx].row[col_no] = value

    # -- helpers for generating valid operations ------------------------------

    def insert_position(self, sk: tuple) -> int:
        """Live RID where a tuple with sort key ``sk`` belongs."""
        rid = 0
        for slot in self.slots:
            if slot.is_ghost:
                continue
            if slot.sk > tuple(sk):
                return rid
            rid += 1
        return rid

    def live_sks(self) -> list[tuple]:
        return [s.sk for s in self.slots if not s.is_ghost]

    def contains_sk(self, sk: tuple) -> bool:
        return tuple(sk) in set(self.live_sks())

    # -- internals -------------------------------------------------------------

    def _slot_of_rid(self, rid: int) -> int:
        live = -1
        for idx, slot in enumerate(self.slots):
            if not slot.is_ghost:
                live += 1
                if live == rid:
                    return idx
        raise IndexError(f"live rid {rid} out of range (live={live + 1})")

    def _insertion_slot(self, rid: int, sk: tuple) -> int:
        """Slot index for a new insert that should land at live position
        ``rid``, placed among boundary ghosts by sort-key comparison."""
        # Slot index of the live tuple currently at position rid (or end).
        live = 0
        boundary = len(self.slots)
        for idx, slot in enumerate(self.slots):
            if slot.is_ghost:
                continue
            if live == rid:
                boundary = idx
                break
            live += 1
        # Walk back over the ghost run immediately before the boundary:
        # the insert goes before every ghost whose key exceeds (or equals)
        # the new key, so that ghost ordering mirrors SK ordering.
        idx = boundary
        while idx > 0 and self.slots[idx - 1].is_ghost:
            if self.slots[idx - 1].sk > tuple(sk):
                idx -= 1
            elif self.slots[idx - 1].sk == tuple(sk):
                idx -= 1  # re-insert of a deleted key sits before its ghost
                break
            else:
                break
        return idx
