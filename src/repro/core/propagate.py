"""Propagate: fold a higher-layer PDT into the layer below (Algorithm 7).

``propagate(read, write)`` applies every update of ``write`` — which must
be *consecutive* to ``read`` (paper Definition 2: write's SID domain is
read's RID domain) — into ``read``, in left-to-right entry order. Because
entries are applied in order, read's RID domain evolves to match write's as
we go, so each entry's RID can be used directly. Inserts additionally need
their exact SID with respect to read's ghost tuples, recovered from sort
keys via ``sk_rid_to_sid`` (Algorithm 6).

Used when the Write-PDT outgrows its budget (migrate to the Read-PDT) and
at commit (migrate a serialized Trans-PDT into the Write-PDT).

Two implementations of the same fold:

* :func:`propagate` — the paper-faithful per-entry loop: one counted-tree
  descent into ``read`` per ``write`` entry. Cheap when ``write`` is a
  handful of entries; the differential-testing oracle otherwise.
* :func:`propagate_batch` — the sorted-run form used by the bulk update
  path: both entry streams are walked once, merged group-by-group in
  write-SID order into a fresh entry run, and ``read`` is rebuilt from
  that run with ``bulk_append_entries``. O(|read| + |write|) with no
  descents; chosen automatically when ``write`` is large relative to
  ``read`` (or ``read`` is empty, where it degenerates to a bulk copy).
"""

from __future__ import annotations

from itertools import groupby

from .types import KIND_DEL, KIND_INS, delta_of

#: propagate_batch falls back to the scalar loop when read has more than
#: this many entries per write entry (rebuilding read would dominate).
MERGE_FOLD_RATIO = 8


def propagate(read_pdt, write_pdt) -> None:
    """Apply all of ``write_pdt``'s updates into ``read_pdt`` (in place)."""
    if read_pdt.schema is not write_pdt.schema and (
        read_pdt.schema != write_pdt.schema
    ):
        raise ValueError("propagate requires identical schemas")
    schema = write_pdt.schema
    for entry in write_pdt.iter_entries():
        rid = entry.rid
        if entry.is_insert:
            row = list(write_pdt.values.get_insert(entry.ref))
            sid = read_pdt.sk_rid_to_sid(schema.sk_of(row), rid)
            read_pdt.add_insert(sid, rid, row)
        elif entry.is_delete:
            read_pdt.add_delete(rid, write_pdt.values.get_delete(entry.ref))
        else:
            read_pdt.add_modify(
                rid,
                entry.kind,
                write_pdt.values.get_modify(entry.kind, entry.ref),
            )


def propagate_batch(read_pdt, write_pdt, force_merge: bool = False) -> None:
    """Sorted-run Propagate: fold ``write_pdt`` into ``read_pdt`` in one
    ordered pass over both entry streams.

    Semantically identical to :func:`propagate` (the property suite
    asserts so); picks the merge fold when it pays — ``read`` empty or
    ``write`` within :data:`MERGE_FOLD_RATIO` of ``read``'s size — and
    the scalar loop otherwise. ``force_merge`` pins the merge fold (used
    by the differential tests to exercise it at every size ratio).
    """
    if read_pdt.schema is not write_pdt.schema and (
        read_pdt.schema != write_pdt.schema
    ):
        raise ValueError("propagate requires identical schemas")
    if write_pdt.is_empty():
        return
    if not force_merge and read_pdt.count() > \
            MERGE_FOLD_RATIO * write_pdt.count():
        propagate(read_pdt, write_pdt)
        return
    merged = _merge_fold(read_pdt, write_pdt)
    read_pdt.clear()
    read_pdt.bulk_append_entries(merged)


def _read_payload(pdt, entry):
    if entry.kind == KIND_INS:
        return list(pdt.values.get_insert(entry.ref))
    if entry.kind == KIND_DEL:
        return pdt.values.get_delete(entry.ref)
    return pdt.values.get_modify(entry.kind, entry.ref)


def _merge_fold(read_pdt, write_pdt) -> list:
    """Merged ``(sid, kind, payload)`` run of read ∘ write in read's SID
    domain.

    Write entries are grouped by their SID — which, by consecutivity, *is*
    the target position in read's output RID domain — and each group is
    spliced against the read entries at that position, replaying the
    scalar algorithms' interaction rules on the streams: inserts order
    among boundary ghosts by sort key (Algorithm 6), a delete annihilates
    a read-resident insert and swallows a read modify chain (Algorithm 5),
    and modifies rewrite insert rows / merge into modify chains by column
    number (Algorithm 4).
    """
    schema = read_pdt.schema
    r_entries = list(read_pdt.iter_entries())
    n_read = len(r_entries)
    out: list[tuple] = []
    ri = 0
    delta_r = 0  # net delta of read entries consumed so far

    def emit_read(entry) -> None:
        nonlocal ri, delta_r
        out.append((entry.sid, entry.kind, _read_payload(read_pdt, entry)))
        delta_r += delta_of(entry.kind)
        ri += 1

    for pos, group in groupby(write_pdt.iter_entries(), key=lambda e: e.sid):
        # Read entries strictly before the target position pass through.
        while ri < n_read and r_entries[ri].rid < pos:
            emit_read(r_entries[ri])
        pending_mods: dict[int, object] = {}
        for w in group:
            if w.kind == KIND_INS:
                row = list(write_pdt.values.get_insert(w.ref))
                sk = schema.sk_of(row)
                # Boundary ghosts with smaller keys precede the insert.
                while (
                    ri < n_read
                    and r_entries[ri].rid == pos
                    and r_entries[ri].kind == KIND_DEL
                    and sk > read_pdt.values.get_delete(r_entries[ri].ref)
                ):
                    emit_read(r_entries[ri])
                out.append((pos - delta_r, KIND_INS, row))
            elif w.kind == KIND_DEL:
                # All remaining ghosts at the position precede the live
                # tuple the delete addresses.
                while (
                    ri < n_read
                    and r_entries[ri].rid == pos
                    and r_entries[ri].kind == KIND_DEL
                ):
                    emit_read(r_entries[ri])
                if (
                    ri < n_read
                    and r_entries[ri].rid == pos
                    and r_entries[ri].kind == KIND_INS
                ):
                    # Deleting a read-resident insert annihilates both;
                    # the insert still counted in read's RID domain.
                    delta_r += 1
                    ri += 1
                    continue
                while (
                    ri < n_read
                    and r_entries[ri].rid == pos
                    and r_entries[ri].kind >= 0
                ):
                    ri += 1  # swallow the read modify chain
                out.append((
                    pos - delta_r, KIND_DEL,
                    write_pdt.values.get_delete(w.ref),
                ))
            else:
                pending_mods[w.kind] = write_pdt.values.get_modify(
                    w.kind, w.ref
                )
        if pending_mods:
            while (
                ri < n_read
                and r_entries[ri].rid == pos
                and r_entries[ri].kind == KIND_DEL
            ):
                emit_read(r_entries[ri])
            if (
                ri < n_read
                and r_entries[ri].rid == pos
                and r_entries[ri].kind == KIND_INS
            ):
                # Modify of a read-resident insert rewrites its row.
                row = list(read_pdt.values.get_insert(r_entries[ri].ref))
                for col_no, value in pending_mods.items():
                    row[col_no] = value
                out.append((r_entries[ri].sid, KIND_INS, row))
                delta_r += 1
                ri += 1
            else:
                # Merge into the stable tuple's modify chain (kept ordered
                # by column number; write values override equal columns).
                chain: dict[int, object] = {}
                while (
                    ri < n_read
                    and r_entries[ri].rid == pos
                    and r_entries[ri].kind >= 0
                ):
                    chain[r_entries[ri].kind] = _read_payload(
                        read_pdt, r_entries[ri]
                    )
                    ri += 1
                chain.update(pending_mods)
                for col_no in sorted(chain):
                    out.append((pos - delta_r, col_no, chain[col_no]))
    while ri < n_read:
        emit_read(r_entries[ri])
    return out
