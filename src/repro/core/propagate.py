"""Propagate: fold a higher-layer PDT into the layer below (Algorithm 7).

``propagate(read, write)`` applies every update of ``write`` — which must
be *consecutive* to ``read`` (paper Definition 2: write's SID domain is
read's RID domain) — into ``read``, in left-to-right entry order. Because
entries are applied in order, read's RID domain evolves to match write's as
we go, so each entry's RID can be used directly. Inserts additionally need
their exact SID with respect to read's ghost tuples, recovered from sort
keys via ``sk_rid_to_sid`` (Algorithm 6).

Used when the Write-PDT outgrows its budget (migrate to the Read-PDT) and
at commit (migrate a serialized Trans-PDT into the Write-PDT).
"""

from __future__ import annotations


def propagate(read_pdt, write_pdt) -> None:
    """Apply all of ``write_pdt``'s updates into ``read_pdt`` (in place)."""
    if read_pdt.schema is not write_pdt.schema and (
        read_pdt.schema != write_pdt.schema
    ):
        raise ValueError("propagate requires identical schemas")
    schema = write_pdt.schema
    for entry in write_pdt.iter_entries():
        rid = entry.rid
        if entry.is_insert:
            row = list(write_pdt.values.get_insert(entry.ref))
            sid = read_pdt.sk_rid_to_sid(schema.sk_of(row), rid)
            read_pdt.add_insert(sid, rid, row)
        elif entry.is_delete:
            read_pdt.add_delete(rid, write_pdt.values.get_delete(entry.ref))
        else:
            read_pdt.add_modify(
                rid,
                entry.kind,
                write_pdt.values.get_modify(entry.kind, entry.ref),
            )
