"""Shared benchmark plumbing: scaling knobs, one-shot timing, reports.

Benchmark sizes follow the paper's experiments scaled to laptop-Python
budgets; set ``REPRO_SCALE`` (a float multiplier, default 1.0) to grow or
shrink every series, and ``REPRO_TPCH_SF`` to change the TPC-H scale
factor (default 0.01). Results printed here are the same series the
paper's figures plot; EXPERIMENTS.md records a reference run.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path


def scale() -> float:
    """Global benchmark size multiplier from ``REPRO_SCALE``."""
    return float(os.environ.get("REPRO_SCALE", "1.0"))


def scaled(n: int, minimum: int = 1) -> int:
    return max(int(n * scale()), minimum)


def tpch_sf() -> float:
    return float(os.environ.get("REPRO_TPCH_SF", "0.01"))


def time_once(fn) -> float:
    """Wall-clock one call (for report-style, non-statistical measures)."""
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def consume(batches) -> int:
    """Drain a batch stream; returns rows seen (keeps work honest)."""
    total = 0
    for _, arrays in batches:
        first = next(iter(arrays.values()))
        total += len(first)
    return total


class Report:
    """Collects labelled rows and prints an aligned table at the end."""

    def __init__(self, title: str, columns: list[str]):
        self.title = title
        self.columns = columns
        self.rows: list[list] = []

    def add(self, *values) -> None:
        if len(values) != len(self.columns):
            raise ValueError("report row arity mismatch")
        self.rows.append(list(values))

    def render(self) -> str:
        def fmt(v):
            if isinstance(v, float):
                return f"{v:.4f}"
            return str(v)

        table = [self.columns] + [[fmt(v) for v in r] for r in self.rows]
        widths = [
            max(len(row[i]) for row in table) for i in range(len(self.columns))
        ]
        lines = [f"== {self.title} =="]
        for i, row in enumerate(table):
            lines.append(
                "  ".join(cell.rjust(w) for cell, w in zip(row, widths))
            )
            if i == 0:
                lines.append("  ".join("-" * w for w in widths))
        return "\n".join(lines)

    def print(self) -> None:
        print("\n" + self.render())

    def save(self, name: str) -> Path:
        """Persist rows as JSON under benchmarks/results/."""
        out_dir = Path(__file__).resolve().parents[3] / "benchmarks" / "results"
        out_dir.mkdir(parents=True, exist_ok=True)
        path = out_dir / f"{name}.json"
        payload = {
            "title": self.title,
            "columns": self.columns,
            "rows": self.rows,
        }
        path.write_text(json.dumps(payload, indent=2, default=str))
        return path
