"""Benchmark harness utilities shared by the figure benchmarks."""

from .harness import Report, consume, scale, scaled, time_once, tpch_sf

__all__ = ["Report", "consume", "scale", "scaled", "time_once", "tpch_sf"]
