"""Streaming cursors: result blocks as shards complete, never a full copy.

A :class:`StreamingCursor` is what every service read returns. It drains
its per-shard feeds in shard (key) order, rebasing local RIDs into the
global domain with the same :func:`~repro.engine.scan.rebase_block_streams`
the thread-pool fan-out uses, and applies the request's key filter and
projection block by block — so the first result block is available as soon
as the first shard's pipeline produces it, while later shards are still
scanning. Nothing is materialized unless the caller asks
(:meth:`to_relation`).

Cursors are synchronous iterators and asynchronous iterators at once:
``for rid, arrays in cursor`` from a worker thread, or ``async for rid,
arrays in cursor`` from an event loop (each ``__anext__`` hops to a thread
so the loop never blocks on a shard scan). Exhausting or closing the
cursor releases its admission slot, its snapshot-pin lease, and fires the
service's between-requests maintenance hook.
"""

from __future__ import annotations

import time

from ..engine.relation import Relation
from ..engine.scan import rebase_block_streams
from ..obs import QueryProfile, ShardScanProfile
from .jobs import RequestStats


class StreamingCursor:
    """Iterator over one request's ``(rid, arrays)`` result blocks."""

    def __init__(self, plan, feeds, on_finish=None, tracer=None,
                 root_span=None):
        self._plan = plan
        self._on_finish = on_finish
        self.stats = RequestStats(submitted_at=time.perf_counter(),
                                  shards=len(feeds))
        self._tracer = tracer
        self._root_span = root_span
        self.profile = QueryProfile(
            table=plan.table, shards=len(feeds),
            trace_id=root_span.trace_id if root_span is not None else None,
        )
        self._stream = self._blocks(feeds)
        self._finished = False

    @property
    def columns(self) -> list[str]:
        return list(self._plan.columns)

    @property
    def table(self) -> str:
        return self._plan.table

    def _blocks(self, feeds):
        from .plan import filter_blocks

        # Count what each shard's pipeline actually streamed (pre-filter,
        # so union over-scan from job sharing is visible in the profile).
        streams = []
        for feed, spec in zip(feeds, self._plan.parts):
            shard_prof = ShardScanProfile(shard=spec.pinned.name)
            self.profile.per_shard.append(shard_prof)
            streams.append(self._counted(feed, shard_prof))
        return filter_blocks(self._plan, rebase_block_streams(streams))

    @staticmethod
    def _counted(feed, shard_prof: ShardScanProfile):
        for rid, arrays in feed.blocks():
            shard_prof.blocks += 1
            if arrays:
                shard_prof.rows += len(next(iter(arrays.values())))
            yield rid, arrays

    # -- consumption -------------------------------------------------------

    def next_block(self):
        """Next ``(rid, arrays)`` result block, or ``None`` at the end.

        Blocks until a shard job produces one; a failed job re-raises its
        exception here (after releasing the cursor's resources).
        """
        if self._finished:
            return None
        try:
            rid, arrays = next(self._stream)
        except StopIteration:
            self._finish()
            return None
        except BaseException:
            self._finish()
            raise
        if self.stats.first_block_at is None:
            self.stats.first_block_at = time.perf_counter()
        self.stats.blocks += 1
        if arrays:
            self.stats.rows += len(next(iter(arrays.values())))
        return rid, arrays

    def __iter__(self):
        return self

    def __next__(self):
        block = self.next_block()
        if block is None:
            raise StopIteration
        return block

    def __aiter__(self):
        return self

    async def __anext__(self):
        import asyncio

        block = await asyncio.to_thread(self.next_block)
        if block is None:
            raise StopAsyncIteration
        return block

    def to_relation(self) -> Relation:
        """Drain the cursor into a materialized :class:`Relation`."""
        return Relation.from_batches(self._plan.columns, iter(self))

    def fetch_rows(self) -> list[tuple]:
        """Drain into Python row tuples (testing convenience)."""
        return self.to_relation().rows()

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Stop consuming and release resources. In-flight shard jobs run
        to completion (their feeds are unbounded), but their output is
        dropped."""
        self._finish()

    def _finish(self) -> None:
        if self._finished:
            return
        self._finished = True
        self.stats.finished_at = time.perf_counter()
        prof = self.profile
        prof.rows = self.stats.rows
        prof.blocks = self.stats.blocks
        prof.shared_jobs = self.stats.shared_jobs
        prof.total_s = self.stats.total_time
        prof.time_to_first_block_s = self.stats.time_to_first_block
        if self._root_span is not None:
            # Finish the request root before on_finish runs the
            # slow-query check, so the rendered tree includes it.
            self._root_span.attrs["rows"] = self.stats.rows
            self._root_span.attrs["blocks"] = self.stats.blocks
            self._tracer.finish(self._root_span)
        if self._on_finish is not None:
            self._on_finish(self)

    def __enter__(self) -> "StreamingCursor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):
        # Backstop for abandoned cursors: an admission slot or pin lease
        # must not leak just because a caller dropped the reference.
        try:
            self._finish()
        except BaseException:
            pass  # interpreter teardown; the service may be gone already

    def __repr__(self) -> str:
        state = "done" if self._finished else "open"
        return (
            f"StreamingCursor({self._plan.table!r}, "
            f"shards={self.stats.shards}, {state})"
        )
