"""Per-shard scan jobs, cooperative sharing, and admission control.

The service decomposes every read request into one job per shard (the
:mod:`~repro.service.plan` output). Jobs are the unit of scheduling *and*
of sharing: a :class:`ShardScanJob` carries a list of consumer feeds, and
any request whose spec reads the same pinned version
(:attr:`~repro.service.plan.ShardScanSpec.share_key`) can attach to a job
instead of scheduling its own scan. The job then runs one MergeScan over
the union of its consumers' SID ranges and pushes every block to every
feed — the cooperative-scans idea (Zukowski et al.'s X100 lineage, the
same system family as the paper): under concurrent skewed analytics most
requests want the same hot blocks, so one physical scan amortizes across
all of them. Each consumer's own key filter discards whatever the union
over-scans, which is what makes attach-with-extension unconditionally
safe.

Attachment works *mid-scan* too: a compatible consumer arriving after the
job started (whose range the already-frozen union covers) gets a
:class:`DeferredFeed` — it rides along for the remaining blocks, which
buffer while a small *catch-up* sub-scan re-reads the deterministic
prefix it missed; once the prefix is delivered the buffered tail flushes
and the consumer has the exact full stream. Only a consumer arriving
after the scan finished (or needing rows outside the frozen union)
schedules a fresh job.

Jobs execute through a pluggable ``runner`` — by default the spec's own
in-thread block pipeline; a process-mode database installs the
:class:`~repro.exec.router.ExecutorRouter`'s runner so the same job (and
its catch-up sub-scans) stream from a shard worker process instead.

Feeds are unbounded: a job never blocks on a slow consumer (so job workers
cannot deadlock), and memory stays bounded because admission control
bounds in-flight *requests* — the same envelope as the thread-pool fan-out
path, which materializes whole per-shard scans per query.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field, fields


class ServiceError(RuntimeError):
    """Base class for query-service failures."""


class ServiceClosed(ServiceError):
    """Request submitted to a closed service."""


class ServiceSaturated(ServiceError):
    """Admission control could not grant a slot within the timeout."""


_DONE = object()  # feed sentinel: the producing job finished cleanly


class ShardFeed:
    """One consumer's view of one shard job's block stream."""

    def __init__(self):
        self._queue: queue.SimpleQueue = queue.SimpleQueue()

    def put(self, item) -> None:
        self._queue.put(item)

    def finish(self) -> None:
        self._queue.put(_DONE)

    def fail(self, exc: BaseException) -> None:
        self._queue.put(exc)

    def blocks(self):
        """Yield ``(first_rid, arrays)`` until the job finishes; re-raise
        the job's failure in the consumer."""
        while True:
            item = self._queue.get()
            if item is _DONE:
                return
            if isinstance(item, BaseException):
                raise item
            yield item


class DeferredFeed(ShardFeed):
    """A feed attached mid-scan: live items buffer until the catch-up
    sub-scan primes the prefix the consumer missed, keeping the
    consumer's stream in exact block order."""

    def __init__(self):
        super().__init__()
        self._buffer: list = []
        self._state_lock = threading.Lock()
        self._primed = False

    def _enqueue_or_buffer(self, item) -> None:
        with self._state_lock:
            if not self._primed:
                self._buffer.append(item)
                return
        self._queue.put(item)

    def put(self, item) -> None:
        self._enqueue_or_buffer(item)

    def finish(self) -> None:
        self._enqueue_or_buffer(_DONE)

    def fail(self, exc: BaseException) -> None:
        self._enqueue_or_buffer(exc)

    def prime(self, prefix_blocks) -> None:
        """Deliver the missed prefix, then flush whatever the live job
        buffered in the meantime; later items flow straight through."""
        with self._state_lock:
            for block in prefix_blocks:
                self._queue.put(block)
            for item in self._buffer:
                self._queue.put(item)
            self._buffer = []
            self._primed = True

    def prime_failed(self, exc: BaseException) -> None:
        """The catch-up sub-scan failed: the consumer's stream is
        unrecoverable (its prefix is missing) even if the live job is
        fine."""
        with self._state_lock:
            self._queue.put(exc)
            self._buffer = []
            self._primed = True


class ShardScanJob:
    """One scheduled scan of one shard's pinned version, multi-consumer.

    ``runner(spec, sid_lo, sid_hi, block_rows, counter=None) -> block
    iterable`` overrides how the union range is physically scanned
    (process-mode dispatch); the default is the spec's in-thread
    *pushed* pipeline, which applies the spec's predicate/aggregate
    below the feeds. Either way the stream over a pinned version is
    deterministic — pushed or not — which is what makes mid-scan
    catch-up (and crash re-dispatch inside the router's runner) exact.
    """

    def __init__(self, spec, block_rows: int, runner=None):
        self.spec = spec
        self.block_rows = block_rows
        self.sid_lo = spec.sid_lo
        self.sid_hi = spec.sid_hi
        self._runner = runner
        # Push-down accounting, filled by the pushed stream (locally or
        # from the worker's completion extras): rows the physical scan
        # read vs. rows that survived into the feeds.
        self.pushdown = bool(getattr(spec, "pushdown", False))
        self.pushdown_counter = {"rows_in": 0, "rows_out": 0}
        self._feeds: list[ShardFeed] = [ShardFeed()]
        self._lock = threading.Lock()
        self._started = False
        self._finished = False
        self._emitted = 0  # blocks fanned out so far (under _lock)
        self._done_callbacks: list = []
        # (tracer, parent ctx) set by the service on new jobs; the span
        # parents under the request that *created* the job (a shared job
        # belongs to its first submitter's trace).
        self.trace = None

    @property
    def first_feed(self) -> ShardFeed:
        return self._feeds[0]

    @property
    def consumers(self) -> int:
        return len(self._feeds)

    def _stream(self, sid_lo: int, sid_hi: int, counter: dict | None = None):
        """The job's (pushed-down) block stream. ``counter`` collects
        push-down row accounting for the *primary* pass only — catch-up
        re-scans pass None so re-read rows are not double-counted."""
        if self._runner is not None:
            if counter is not None:
                return self._runner(self.spec, sid_lo, sid_hi,
                                    self.block_rows, counter=counter)
            # Plain calls keep the legacy 4-argument runner contract.
            return self._runner(self.spec, sid_lo, sid_hi, self.block_rows)
        return self.spec.pushed_stream(sid_lo, sid_hi, self.block_rows,
                                       counter=counter)

    def try_attach(self, spec):
        """Join this job; returns ``(feed, catch_up)``.

        Before the scan starts, the union range extends to cover ``spec``
        and the feed sees every block (``catch_up`` is None). Once
        underway the union is frozen, so only a spec it already covers
        can join: the feed buffers the remaining live blocks while
        ``catch_up`` — run it on a worker thread — re-scans the missed
        deterministic prefix and primes the feed. ``(None, None)`` means
        the job cannot take the spec (finished, or range outside the
        frozen union): schedule a fresh job.
        """
        with self._lock:
            if not self._started:
                self.sid_lo = min(self.sid_lo, spec.sid_lo)
                self.sid_hi = max(self.sid_hi, spec.sid_hi)
                feed = ShardFeed()
                self._feeds.append(feed)
                return feed, None
            if self._finished or spec.sid_lo < self.sid_lo \
                    or spec.sid_hi > self.sid_hi:
                return None, None
            missed = self._emitted
            if missed == 0:
                # Started but nothing emitted yet: a plain feed still
                # sees the whole stream.
                feed = ShardFeed()
                self._feeds.append(feed)
                return feed, None
            feed = DeferredFeed()
            self._feeds.append(feed)
            lo, hi = self.sid_lo, self.sid_hi

        def catch_up():
            try:
                prefix = []
                stream = iter(self._stream(lo, hi))
                for block in stream:
                    prefix.append(block)
                    if len(prefix) == missed:
                        break
                close = getattr(stream, "close", None)
                if close is not None:
                    close()
                feed.prime(prefix)
            except BaseException as exc:
                feed.prime_failed(exc)

        return feed, catch_up

    def add_done_callback(self, callback) -> None:
        """Run ``callback`` once the scan stops touching its pinned
        inputs (pin-lease holds ride on this). Runs immediately if the
        job already finished."""
        with self._lock:
            if not self._finished:
                self._done_callbacks.append(callback)
                return
        callback()

    def run(self) -> None:
        """Scan the union range once, fanning blocks to every consumer.

        The feed list is re-snapshotted per block in the same locked
        section that counts the block as emitted, so a mid-scan attach
        either receives a block live or counts it as missed — never
        neither, never both.
        """
        with self._lock:
            self._started = True
        try:
            for block in self._stream(self.sid_lo, self.sid_hi,
                                      counter=self.pushdown_counter
                                      if self.pushdown else None):
                with self._lock:
                    feeds = list(self._feeds)
                    self._emitted += 1
                for feed in feeds:
                    feed.put(block)
        except BaseException as exc:  # propagate into every consumer
            with self._lock:
                self._finished = True
                feeds = list(self._feeds)
            for feed in feeds:
                feed.fail(exc)
        else:
            with self._lock:
                self._finished = True
                feeds = list(self._feeds)
            for feed in feeds:
                feed.finish()
        finally:
            with self._lock:
                self._finished = True
                callbacks, self._done_callbacks = self._done_callbacks, []
            for callback in callbacks:
                callback()


class JobScheduler:
    """Coalesces compatible shard scans and hands jobs to the worker pool.

    ``schedule`` only *registers* work; the caller submits the returned
    new jobs to its executor after the whole request (or request batch)
    is planned — so every spec a multi-request submission produces gets
    its sharing chance before any scan starts.
    """

    def __init__(self):
        self._open: dict[tuple, ShardScanJob] = {}
        self._lock = threading.Lock()

    def schedule(self, spec, block_rows: int, runner=None
                 ) -> tuple[ShardFeed, ShardScanJob, bool, object]:
        """``(feed, job, shared, catch_up)`` for ``spec``.

        ``shared`` is True when an open compatible job absorbed the spec
        (pre-start, or mid-scan through a deferred feed); otherwise the
        caller must submit the (new) job to its executor. ``catch_up`` is
        a zero-argument callable the caller must also run (mid-scan
        attaches only — it back-fills the consumer's missed prefix), or
        None. ``runner`` overrides the physical scan for a job created
        here (see :class:`ShardScanJob`).
        """
        key = spec.share_key + (block_rows,)
        with self._lock:
            job = self._open.get(key)
            if job is not None:
                feed, catch_up = job.try_attach(spec)
                if feed is not None:
                    return feed, job, True, catch_up
            job = ShardScanJob(spec, block_rows, runner=runner)
            self._open[key] = job
            return job.first_feed, job, False, None

    def run_job(self, job: ShardScanJob) -> None:
        """Executor entry point for a scheduled job.

        The job stays in the open table *while it runs* — that is what
        keeps the mid-scan attach window open — and is retired when the
        scan finishes (unless a later schedule already replaced it with a
        fresh job for the same key)."""
        key = job.spec.share_key + (job.block_rows,)
        try:
            job.run()
        finally:
            with self._lock:
                if self._open.get(key) is job:
                    del self._open[key]


class AdmissionController:
    """Bounds in-flight read requests (the service's backpressure).

    ``acquire(n)`` grants all ``n`` slots of a batch atomically —
    all-or-nothing, so two concurrent batch submissions can never
    hold-and-wait each other into a deadlock. It blocks until the slots
    free (or ``timeout`` elapses — :class:`ServiceSaturated`); writers
    are serialized by the commit lock and are not admission-bounded.
    Memory for buffered result blocks is proportional to
    ``max_inflight``.
    """

    def __init__(self, max_inflight: int, timeout: float | None = None):
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        self.max_inflight = max_inflight
        self.timeout = timeout
        self._cond = threading.Condition()
        self.inflight = 0
        self.peak_inflight = 0
        self.admitted = 0
        self.rejected = 0

    def acquire(self, n: int = 1) -> None:
        if n > self.max_inflight:
            raise ValueError(
                f"batch of {n} exceeds max_inflight {self.max_inflight}"
            )
        deadline = (
            None if self.timeout is None
            else time.monotonic() + self.timeout
        )
        with self._cond:
            while self.inflight + n > self.max_inflight:
                remaining = (
                    None if deadline is None
                    else deadline - time.monotonic()
                )
                timed_out = (remaining is not None and remaining <= 0) \
                    or not self._cond.wait(remaining)
                if timed_out:
                    self.rejected += n
                    raise ServiceSaturated(
                        f"no admission slot within {self.timeout}s "
                        f"({self.inflight} requests in flight)"
                    )
            self.inflight += n
            self.admitted += n
            self.peak_inflight = max(self.peak_inflight, self.inflight)

    def release(self, n: int = 1) -> int:
        with self._cond:
            self.inflight -= n
            self._cond.notify_all()
            return self.inflight


@dataclass
class RequestStats:
    """Per-request timing and volume, attached to every cursor."""

    submitted_at: float = 0.0
    first_block_at: float | None = None
    finished_at: float | None = None
    blocks: int = 0
    rows: int = 0
    shards: int = 0
    shared_jobs: int = 0  # shard scans served by an already-open job

    @property
    def time_to_first_block(self) -> float | None:
        if self.first_block_at is None:
            return None
        return self.first_block_at - self.submitted_at

    @property
    def total_time(self) -> float | None:
        if self.finished_at is None:
            return None
        return self.finished_at - self.submitted_at

    def as_dict(self) -> dict:
        """JSON-able view, including the derived timings."""
        out = {f.name: getattr(self, f.name) for f in fields(self)}
        out["time_to_first_block"] = self.time_to_first_block
        out["total_time"] = self.total_time
        return out


@dataclass
class ServiceStats:
    """Service-wide counters (guarded by the service's stats lock)."""

    queries: int = 0
    range_queries: int = 0
    updates: int = 0
    batches: int = 0
    jobs_scheduled: int = 0
    jobs_shared: int = 0
    jobs_attached: int = 0  # shared via a *mid-scan* (catch-up) attach
    blocks_streamed: int = 0
    rows_streamed: int = 0
    # Push-down (jobs carrying a pushed predicate/aggregate):
    pushdown_jobs: int = 0
    rows_scanned: int = 0      # rows those jobs' physical scans read
    rows_pushed_down: int = 0  # rows evaluated in-job, never streamed
    maintenance_runs: int = 0
    # Group-commit coalescing (durable backends; zero on memory storage):
    group_commits: int = 0            # writes acknowledged via a group fsync
    group_flushes_led: int = 0        # writes whose wait led the flush
    group_commits_coalesced: int = 0  # writes that shared a flush
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False)

    def bump(self, **deltas: int) -> None:
        with self._lock:
            for name, delta in deltas.items():
                setattr(self, name, getattr(self, name) + delta)

    def as_dict(self) -> dict:
        """Coherent JSON-able view taken under the stats lock. Prefer
        this (or ``Database.metrics()``) over reading fields directly."""
        with self._lock:
            return {f.name: getattr(self, f.name) for f in fields(self)
                    if not f.name.startswith("_")}

    def __repr__(self) -> str:
        body = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"ServiceStats({body})"
