"""Planning pinned scans: from a snapshot pin to per-shard scan specs.

Every read through the query service (and every ``Database`` query made
against an explicit pin) is planned here: the pin's captured shard layout
routes range predicates to the shards whose key ranges intersect, each
surviving shard's captured (stale) sparse index narrows the scan to a SID
range, and the result is an ordered list of :class:`ShardScanSpec` — one
per shard, each naming exactly the pinned objects a
:func:`~repro.engine.scan.scan_pdt_blocks` pipeline needs. The same
two-level pruning ``Database.query_range`` performs on live state, against
a frozen version.

A spec's :attr:`~ShardScanSpec.share_key` identifies the pinned *version*
it reads (object identities of the stable image and PDT layers, plus the
projected columns): two concurrent requests whose specs share a key can be
served by one physical scan — the cooperative-scan sharing the service's
job scheduler exploits. Pins taken under the same commit LSN share their
Write-PDT copies through the manager's snapshot cache, so even separately
pinned requests coalesce while no commit intervenes.

Push-down: a plan may carry a predicate (:class:`~repro.engine.expr.Expr`)
and/or a partial-aggregate spec (:class:`~repro.engine.expr.AggSpec`).
Both ride on every shard spec and are evaluated *inside* the scan job
(:meth:`ShardScanSpec.pushed_stream`), so only qualifying rows — or one
partial-aggregate block per shard — ever reach a feed. The predicate also
contributes conservative sort-key bounds to router and sparse-index
pruning. The share key then includes the predicate/aggregate identity:
requests only share a physical pass when they compute the same thing.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.merge import MERGE_BLOCK_ROWS
from ..engine import expr as ex
from ..engine import functions as fn
from ..engine.scan import rebase_block_streams, scan_pdt_blocks
from ..shard.router import ShardRouter


@dataclass(frozen=True)
class ShardScanSpec:
    """One shard's share of a pinned scan: the version + the SID range.

    ``where`` / ``agg`` are the pushed-down predicate and aggregate (both
    optional); ``low`` / ``high`` / ``key_cols`` carry the request's
    explicit sort-key bounds for aggregate jobs, which must apply the
    full predicate themselves (aggregation consumes rows before the
    cursor's key trim could see them).
    """

    pinned: object  # PinnedTable
    scan_cols: tuple
    sid_lo: int
    sid_hi: int  # >= stable rows means "to the end", incl. trailing inserts
    where: object = None  # Expr | None
    agg: object = None  # AggSpec | None
    low: tuple | None = None
    high: tuple | None = None
    key_cols: tuple = ()

    @property
    def share_key(self) -> tuple:
        """Identity of the scanned version, projection, and pushed-down
        computation. Two specs with equal keys produce identical block
        streams. For filter-only specs the key stays SID-range-free (a
        shared job scans the union range; each consumer's key filter
        discards the excess); aggregate specs fold their SID/key ranges
        in, because an aggregated stream cannot be trimmed after the
        fact — only identical-range aggregate requests may share."""
        key = (
            self.pinned.name,
            id(self.pinned.stable),
            tuple(id(layer) for layer in self.pinned.layers),
            self.scan_cols,
        )
        if self.where is not None or self.agg is not None:
            key += (None if self.where is None else self.where.key(),)
        if self.agg is not None:
            key += (self.agg.key(), self.low, self.high,
                    self.sid_lo, self.sid_hi)
        return key

    @property
    def pushdown(self) -> bool:
        return self.where is not None or self.agg is not None

    def stream(self, sid_lo: int | None = None, sid_hi: int | None = None,
               block_rows: int = MERGE_BLOCK_ROWS):
        """Raw block pipeline over ``[sid_lo, sid_hi)`` of the pinned
        version (defaults to the spec's own range; shared jobs pass the
        union) — no pushed-down evaluation applied."""
        return scan_pdt_blocks(
            self.pinned.stable,
            list(self.pinned.layers),
            columns=list(self.scan_cols),
            start=self.sid_lo if sid_lo is None else sid_lo,
            stop=self.sid_hi if sid_hi is None else sid_hi,
            block_rows=block_rows,
        )

    def pushed_stream(self, sid_lo: int | None = None,
                      sid_hi: int | None = None,
                      block_rows: int = MERGE_BLOCK_ROWS,
                      counter: dict | None = None):
        """The job-facing stream: :meth:`stream` wrapped with the spec's
        pushed-down predicate/aggregate (a no-op passthrough without
        them). This is the single local definition process workers must
        match byte for byte."""
        stream = self.stream(sid_lo, sid_hi, block_rows)
        if not self.pushdown:
            return stream
        return ex.pushdown_stream(
            stream, where=self.where, agg=self.agg,
            key_cols=self.key_cols, low=self.low, high=self.high,
            counter=counter,
        )

    def push_payload(self) -> dict | None:
        """The worker-protocol form of the pushed-down computation, or
        None when the spec pushes nothing."""
        if not self.pushdown:
            return None
        push: dict = {}
        if self.where is not None:
            push["where"] = self.where.to_payload()
        if self.agg is not None:
            push["agg"] = self.agg.to_payload()
            if self.low is not None or self.high is not None:
                push["key_filter"] = {
                    "cols": list(self.key_cols),
                    "low": None if self.low is None else list(self.low),
                    "high": None if self.high is None else list(self.high),
                }
        return push


@dataclass(frozen=True)
class ScanPlan:
    """An ordered set of shard scans plus the request's filter/projection."""

    table: str
    columns: tuple
    scan_cols: tuple
    sort_key: tuple
    parts: tuple
    low: tuple | None = None
    high: tuple | None = None
    where: object = None  # Expr | None — evaluated inside the shard jobs
    agg: object = None  # AggSpec | None — partials merged at the cursor

    @property
    def filtered(self) -> bool:
        """Whether result blocks need cursor-side trim/projection. The
        pushed predicate itself is already applied in-job; it still flags
        the plan filtered because the scan set carries predicate/sort-key
        columns the caller did not ask for."""
        return (self.low is not None or self.high is not None
                or self.where is not None)

    def filter_block(self, arrays: dict) -> dict | None:
        """Apply the inclusive (prefix-aware) ``[low, high]`` sort-key
        predicate to one block and project to the requested columns;
        ``None`` when no row qualifies. Blocks the predicate fully covers
        pass through without copying."""
        keys = [arrays[c] for c in self.sort_key]
        mask = None
        if self.low is not None:
            mask = fn.lex_ge(keys, self.low)
        if self.high is not None:
            hi_mask = fn.lex_le(keys, self.high)
            mask = hi_mask if mask is None else mask & hi_mask
        if mask is None or mask.all():
            return {c: arrays[c] for c in self.columns}
        if not mask.any():
            return None
        return {c: arrays[c][mask] for c in self.columns}


def plan_scan(pin, table: str, low=None, high=None,
              columns=None, where=None, agg=None) -> ScanPlan:
    """Plan a scan of ``table`` at the pin's commit point.

    ``low``/``high`` are inclusive sort-key (or SK-prefix) bounds, as in
    ``Database.query_range``; with neither, the plan is a full scan whose
    blocks stream in global RID order. ``where`` (an
    :class:`~repro.engine.expr.Expr`) and ``agg`` (an
    :class:`~repro.engine.expr.AggSpec`) push evaluation into the shard
    jobs: the predicate's sort-key bounds join the explicit ones for
    router/sparse-index pruning (a conservative superset — the full
    predicate is re-applied in-job), and an aggregate plan's ``columns``
    become the aggregate's output columns.
    """
    low = tuple(low) if low is not None else None
    high = tuple(high) if high is not None else None
    sharded = pin.is_sharded(table)
    if sharded:
        layout = pin.layout(table)
        names = list(layout.shard_names)
        schema = pin.table(names[0]).stable.schema
    else:
        names = [pin.table(table).name]
        schema = pin.table(names[0]).stable.schema
    # Pruning bounds: the explicit range, tightened by whatever the
    # pushed predicate implies for the leading sort-key column. These
    # are *pruning-only* — the cursor's trim still uses the explicit
    # [low, high], and the predicate is evaluated exactly, in-job.
    prune_lo, prune_hi = low, high
    if where is not None:
        for col in where.columns():
            schema.dtype_of(col)  # fail the batch on unknown columns
        wlow, whigh = where.sk_bounds(schema.sort_key)
        if wlow is not None:
            prune_lo = wlow if prune_lo is None else max(prune_lo, wlow)
        if whigh is not None:
            prune_hi = whigh if prune_hi is None else min(prune_hi, whigh)
    pruned = prune_lo is not None or prune_hi is not None
    if sharded and pruned:
        router = ShardRouter(layout.boundaries)
        # Inverted bounds prune every shard: an empty plan, matching
        # the empty relation the live range path returns.
        names = [names[i]
                 for i in router.shards_for_range(prune_lo, prune_hi)]
    where_cols = sorted(where.columns()) if where is not None else []
    if agg is not None:
        agg = agg.bind(schema)  # validates columns, pins dtypes
        columns = list(agg.output_columns())
        scan_cols = list(dict.fromkeys(
            agg.inputs() + where_cols
            + (list(schema.sort_key)
               if low is not None or high is not None else [])
        ))
    else:
        columns = (list(schema.column_names) if columns is None
                   else list(columns))
        filtered = (low is not None or high is not None
                    or where is not None)
        scan_cols = (
            list(dict.fromkeys(columns + where_cols
                               + list(schema.sort_key)))
            if filtered else columns
        )
    key_cols = tuple(schema.sort_key) if agg is not None else ()
    parts = []
    for name in names:
        pt = pin.table(name)
        if pruned:
            sid_range = pt.sparse_index.sid_range_for_key_range(
                prune_lo, prune_hi)
            lo, hi = sid_range.start, sid_range.stop
        else:
            lo, hi = 0, pt.stable.num_rows
        parts.append(ShardScanSpec(
            pt, tuple(scan_cols), lo, hi, where=where, agg=agg,
            low=low if agg is not None else None,
            high=high if agg is not None else None,
            key_cols=key_cols,
        ))
    return ScanPlan(
        table=table, columns=tuple(columns), scan_cols=tuple(scan_cols),
        sort_key=tuple(schema.sort_key), parts=tuple(parts),
        low=low, high=high, where=where, agg=agg,
    )


def filter_blocks(plan: ScanPlan, stream):
    """Apply a plan's filter/projection to a rebased block stream.

    Unfiltered plans pass through in the exact global RID domain;
    filtered plans re-number RIDs densely over the qualifying rows (the
    pushed predicate was already applied in-job, so only the key trim
    and projection run here). Aggregate plans merge the per-shard
    partial blocks and finalize into one result block. The single
    definition both the inline pinned queries and the service's
    streaming cursors run their blocks through — the byte-identity
    oracle and the streamed path cannot diverge.
    """
    if plan.agg is not None:
        merger = plan.agg.aggregator()
        for _rid, arrays in stream:
            merger.merge(arrays)
        yield 0, merger.finalize()
        return
    if not plan.filtered:
        yield from stream
        return
    out_rid = 0
    for _, arrays in stream:
        block = plan.filter_block(arrays)
        if block is None:
            continue
        n = len(next(iter(block.values()))) if block else 0
        if n:
            yield out_rid, block
            out_rid += n


def iter_plan_blocks(plan: ScanPlan, block_rows: int = MERGE_BLOCK_ROWS,
                     router=None):
    """Execute a plan synchronously, yielding ``(rid, arrays)`` result
    blocks — the inline (service-less) form pinned ``Database`` queries
    use.

    With a process-mode ``router``
    (:class:`~repro.exec.router.ExecutorRouter`) the per-shard specs fan
    out to shard worker processes concurrently instead of chaining
    sequentially on the calling thread; the rebased/filtered stream is
    byte-identical either way.
    """
    if router is not None and router.fanout_executor() is not None:
        from ..engine.scan import fanout_scan_blocks
        from ..exec.router import ScanSource

        # Capture the caller's span context here: the sources run on
        # driver-pool threads, where contextvars would read nothing.
        tracer = router.tracer
        trace_ctx = tracer.ctx() if tracer is not None and tracer.enabled \
            else None
        sources = [
            ScanSource(
                (lambda spec=spec: spec.pushed_stream(
                    block_rows=block_rows)),
                stable=spec.pinned.stable,
                layers=spec.pinned.layers,
                columns=spec.scan_cols,
                sid_lo=spec.sid_lo,
                sid_hi=spec.sid_hi,
                block_rows=block_rows,
                trace_ctx=trace_ctx,
                push=spec.push_payload(),
            )
            for spec in plan.parts
        ]
        return filter_blocks(
            plan, fanout_scan_blocks(sources, executor=router))
    return filter_blocks(
        plan,
        rebase_block_streams(spec.pushed_stream(block_rows=block_rows)
                             for spec in plan.parts),
    )
