"""Planning pinned scans: from a snapshot pin to per-shard scan specs.

Every read through the query service (and every ``Database`` query made
against an explicit pin) is planned here: the pin's captured shard layout
routes range predicates to the shards whose key ranges intersect, each
surviving shard's captured (stale) sparse index narrows the scan to a SID
range, and the result is an ordered list of :class:`ShardScanSpec` — one
per shard, each naming exactly the pinned objects a
:func:`~repro.engine.scan.scan_pdt_blocks` pipeline needs. The same
two-level pruning ``Database.query_range`` performs on live state, against
a frozen version.

A spec's :attr:`~ShardScanSpec.share_key` identifies the pinned *version*
it reads (object identities of the stable image and PDT layers, plus the
projected columns): two concurrent requests whose specs share a key can be
served by one physical scan — the cooperative-scan sharing the service's
job scheduler exploits. Pins taken under the same commit LSN share their
Write-PDT copies through the manager's snapshot cache, so even separately
pinned requests coalesce while no commit intervenes.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.merge import MERGE_BLOCK_ROWS
from ..engine import functions as fn
from ..engine.scan import rebase_block_streams, scan_pdt_blocks
from ..shard.router import ShardRouter


@dataclass(frozen=True)
class ShardScanSpec:
    """One shard's share of a pinned scan: the version + the SID range."""

    pinned: object  # PinnedTable
    scan_cols: tuple
    sid_lo: int
    sid_hi: int  # >= stable rows means "to the end", incl. trailing inserts

    @property
    def share_key(self) -> tuple:
        """Identity of the scanned version and projection. Two specs with
        equal keys read identical bytes, whatever their SID ranges — a
        shared job scans the union range and each consumer's key filter
        discards the excess."""
        return (
            self.pinned.name,
            id(self.pinned.stable),
            tuple(id(layer) for layer in self.pinned.layers),
            self.scan_cols,
        )

    def stream(self, sid_lo: int | None = None, sid_hi: int | None = None,
               block_rows: int = MERGE_BLOCK_ROWS):
        """Block pipeline over ``[sid_lo, sid_hi)`` of the pinned version
        (defaults to the spec's own range; shared jobs pass the union)."""
        return scan_pdt_blocks(
            self.pinned.stable,
            list(self.pinned.layers),
            columns=list(self.scan_cols),
            start=self.sid_lo if sid_lo is None else sid_lo,
            stop=self.sid_hi if sid_hi is None else sid_hi,
            block_rows=block_rows,
        )


@dataclass(frozen=True)
class ScanPlan:
    """An ordered set of shard scans plus the request's filter/projection."""

    table: str
    columns: tuple
    scan_cols: tuple
    sort_key: tuple
    parts: tuple
    low: tuple | None = None
    high: tuple | None = None

    @property
    def filtered(self) -> bool:
        return self.low is not None or self.high is not None

    def filter_block(self, arrays: dict) -> dict | None:
        """Apply the inclusive (prefix-aware) ``[low, high]`` sort-key
        predicate to one block and project to the requested columns;
        ``None`` when no row qualifies. Blocks the predicate fully covers
        pass through without copying."""
        keys = [arrays[c] for c in self.sort_key]
        mask = None
        if self.low is not None:
            mask = fn.lex_ge(keys, self.low)
        if self.high is not None:
            hi_mask = fn.lex_le(keys, self.high)
            mask = hi_mask if mask is None else mask & hi_mask
        if mask is None or mask.all():
            return {c: arrays[c] for c in self.columns}
        if not mask.any():
            return None
        return {c: arrays[c][mask] for c in self.columns}


def plan_scan(pin, table: str, low=None, high=None,
              columns=None) -> ScanPlan:
    """Plan a scan of ``table`` at the pin's commit point.

    ``low``/``high`` are inclusive sort-key (or SK-prefix) bounds, as in
    ``Database.query_range``; with neither, the plan is a full scan whose
    blocks stream in global RID order.
    """
    low = tuple(low) if low is not None else None
    high = tuple(high) if high is not None else None
    if pin.is_sharded(table):
        layout = pin.layout(table)
        names = list(layout.shard_names)
        schema = pin.table(names[0]).stable.schema
        if low is not None or high is not None:
            router = ShardRouter(layout.boundaries)
            # Inverted bounds prune every shard: an empty plan, matching
            # the empty relation the live range path returns.
            names = [names[i] for i in router.shards_for_range(low, high)]
    else:
        names = [pin.table(table).name]
        schema = pin.table(names[0]).stable.schema
    columns = list(schema.column_names) if columns is None else list(columns)
    filtered = low is not None or high is not None
    scan_cols = (
        list(dict.fromkeys(columns + list(schema.sort_key)))
        if filtered else columns
    )
    parts = []
    for name in names:
        pt = pin.table(name)
        if filtered:
            sid_range = pt.sparse_index.sid_range_for_key_range(low, high)
            lo, hi = sid_range.start, sid_range.stop
        else:
            lo, hi = 0, pt.stable.num_rows
        parts.append(ShardScanSpec(pt, tuple(scan_cols), lo, hi))
    return ScanPlan(
        table=table, columns=tuple(columns), scan_cols=tuple(scan_cols),
        sort_key=tuple(schema.sort_key), parts=tuple(parts),
        low=low, high=high,
    )


def filter_blocks(plan: ScanPlan, stream):
    """Apply a plan's filter/projection to a rebased block stream.

    Unfiltered plans pass through in the exact global RID domain;
    filtered plans re-number RIDs densely over the qualifying rows. The
    single definition both the inline pinned queries and the service's
    streaming cursors run their blocks through — the byte-identity
    oracle and the streamed path cannot diverge.
    """
    if not plan.filtered:
        yield from stream
        return
    out_rid = 0
    for _, arrays in stream:
        block = plan.filter_block(arrays)
        if block is None:
            continue
        n = len(next(iter(block.values()))) if block else 0
        if n:
            yield out_rid, block
            out_rid += n


def iter_plan_blocks(plan: ScanPlan, block_rows: int = MERGE_BLOCK_ROWS,
                     router=None):
    """Execute a plan synchronously, yielding ``(rid, arrays)`` result
    blocks — the inline (service-less) form pinned ``Database`` queries
    use.

    With a process-mode ``router``
    (:class:`~repro.exec.router.ExecutorRouter`) the per-shard specs fan
    out to shard worker processes concurrently instead of chaining
    sequentially on the calling thread; the rebased/filtered stream is
    byte-identical either way.
    """
    if router is not None and router.fanout_executor() is not None:
        from ..engine.scan import fanout_scan_blocks
        from ..exec.router import ScanSource

        # Capture the caller's span context here: the sources run on
        # driver-pool threads, where contextvars would read nothing.
        tracer = router.tracer
        trace_ctx = tracer.ctx() if tracer is not None and tracer.enabled \
            else None
        sources = [
            ScanSource(
                (lambda spec=spec: spec.stream(block_rows=block_rows)),
                stable=spec.pinned.stable,
                layers=spec.pinned.layers,
                columns=spec.scan_cols,
                sid_lo=spec.sid_lo,
                sid_hi=spec.sid_hi,
                block_rows=block_rows,
                trace_ctx=trace_ctx,
            )
            for spec in plan.parts
        ]
        return filter_blocks(
            plan, fanout_scan_blocks(sources, executor=router))
    return filter_blocks(
        plan,
        rebase_block_streams(spec.stream(block_rows=block_rows)
                             for spec in plan.parts),
    )
