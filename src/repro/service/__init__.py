"""Async query service: a concurrent front-end over the PDT database.

The paper's layering exists so readers never block writers; this package
carries that property across the API boundary. A
:class:`~repro.service.service.QueryService` admits concurrent query,
range-query, and update/batch requests (thread-safe ``submit_*`` calls or
an asyncio façade), plans every read against a database-wide snapshot pin
(one commit point across all shards), schedules one scan job per shard —
coalescing compatible concurrent scans into shared jobs — and returns
streaming cursors that yield result blocks as shards complete. See
``DESIGN.md`` ("Query service") for the job scheduling, cursor protocol,
and pin lifecycle.
"""

from .cursor import StreamingCursor
from .jobs import (
    AdmissionController,
    JobScheduler,
    RequestStats,
    ServiceClosed,
    ServiceError,
    ServiceSaturated,
    ServiceStats,
    ShardScanJob,
)
from .plan import (
    ScanPlan,
    ShardScanSpec,
    filter_blocks,
    iter_plan_blocks,
    plan_scan,
)
from .service import QueryService

__all__ = [
    "AdmissionController",
    "JobScheduler",
    "QueryService",
    "RequestStats",
    "ScanPlan",
    "ServiceClosed",
    "ServiceError",
    "ServiceSaturated",
    "ServiceStats",
    "ShardScanJob",
    "ShardScanSpec",
    "StreamingCursor",
    "filter_blocks",
    "iter_plan_blocks",
    "plan_scan",
]
