"""The concurrent query front-end: admission, pins, jobs, cursors.

``QueryService`` is the database's concurrency boundary. Synchronous
callers use the ``submit_*`` methods (thread-safe, returning streaming
cursors or futures); asyncio callers use the ``query`` / ``query_range`` /
``apply_batch`` / ``update`` coroutines, which are a thin façade over the
same worker pool — submission hops to a thread, cursors are async-iterable
natively.

One read request flows::

    acquire admission slot                 (backpressure: bounded in-flight)
      -> lease a snapshot pin              (one commit point, whole database)
      -> plan per-shard scans against it   (router + sparse-index pruning)
      -> schedule one job per shard        (coalescing with open compatible
                                            jobs: cooperative shared scans)
      -> return a StreamingCursor          (blocks stream as shards finish)

Writes (scalar updates and bulk batches) run on the same pool but are
serialized by the service's commit lock — the PDT layering makes readers
never block on them: every live cursor reads pinned layers, and a commit
on a pinned table swings the master Write-PDT to a copy instead of
mutating the object pins loan. On durable storage the commit lock is also
the group-commit coalescing point: each write stages its WAL record under
the lock but waits for the shared fsync *outside* it, so while one
writer's group fsync is in flight the next writer is already running its
commit CPU work — fsyncs coalesce across writers and the asyncio façade
gets the benefit for free through the existing futures. When the last
in-flight request drains, the service runs the maintenance the checkpoint
scheduler and rebalancer deferred while pins were live — the same
between-queries draining ``Database.query`` does for synchronous use.

Thread-safety contract: every public method is safe from any thread (and
the coroutine facade from any event loop); internally, reads are
lock-free against writes — a commit never blocks a streaming cursor and
vice versa. ``stats`` is updated under its own lock; read it via
``stats.as_dict()`` (or ``Database.metrics()``) for a coherent snapshot.

Lifecycle contract: obtain a service from ``Database.serve(workers=N)``
and close it — it is a context manager — before closing the database
(``Database.close()`` also closes any still-attached services).
``close()`` drains in-flight requests, joins the worker pool, and runs
deferred maintenance; afterwards submissions raise :class:`ServiceClosed`
while already-returned cursors may still be drained. Cursors and pins
obtained from the service hold refcounted leases, so dropping them (even
abandoning them to the GC) releases resources deterministically.
"""

from __future__ import annotations

import asyncio
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor

from ..core.merge import MERGE_BLOCK_ROWS
from .cursor import StreamingCursor
from .jobs import (
    AdmissionController,
    JobScheduler,
    ServiceClosed,
    ServiceStats,
)
from .plan import plan_scan

DEFAULT_WORKERS = 4


class _PinLease:
    """Refcounted hold on one submission's pin.

    Both the cursors *and* the shard scan jobs of a submission retain the
    lease: a cursor closed early must not let maintenance rewrite the
    pinned objects a still-running job is scanning, so the pin releases
    (if owned) only when the last cursor has finished AND the last job
    has stopped reading.
    """

    def __init__(self, pin, owns: bool):
        self.pin = pin
        self.owns = owns
        # One constructor hold, owned by the submission itself until all
        # cursors and jobs took theirs — otherwise a shared job finishing
        # mid-submit could transiently drain the count to zero and
        # release the pin under the rest of the batch.
        self._count = 1
        self._lock = threading.Lock()

    def retain(self) -> "_PinLease":
        with self._lock:
            self._count += 1
        return self

    def release(self) -> bool:
        """Drop one hold; True when the lease just drained. The pin is
        released exactly once: ``owns`` is cleared under the lock, so a
        lease whose pin was already force-released at service shutdown
        (:meth:`disown`) cannot release it again when a leftover cursor
        is closed afterwards."""
        with self._lock:
            self._count -= 1
            drained = self._count == 0
            release_pin = drained and self.owns
            if release_pin:
                self.owns = False
        if release_pin:
            self.pin.release()
        return drained

    def disown(self) -> None:
        """Force-release the owned pin (service shutdown outlives
        never-drained cursors); later ``release`` calls become pin
        no-ops."""
        with self._lock:
            release_pin = self.owns
            self.owns = False
        if release_pin:
            self.pin.release()


class QueryService:
    """Concurrent front-end over one :class:`~repro.db.database.Database`.

    Parameters: ``workers`` sizes the scan/write pool; ``max_inflight``
    bounds admitted read requests (buffered result memory scales with it);
    ``admission_timeout`` turns backpressure into
    :class:`~repro.service.jobs.ServiceSaturated` after that many seconds
    (``None`` blocks); ``block_rows`` is the cursor block granularity.

    The service registers itself with the database, so ``db.close()``
    joins its workers; use either as a context manager.
    """

    def __init__(self, db, workers: int = DEFAULT_WORKERS,
                 max_inflight: int = 32,
                 admission_timeout: float | None = None,
                 block_rows: int = MERGE_BLOCK_ROWS):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self._db = db
        self.block_rows = block_rows
        # Process-mode databases hand shard jobs to worker processes; the
        # runner is None in thread mode and the scheduler keeps its
        # zero-overhead in-thread default.
        exec_router = getattr(db, "exec_router", None)
        self._runner = (
            exec_router.spec_runner() if exec_router is not None else None
        )
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="query-service",
        )
        self._write_lock = threading.RLock()
        self._scheduler = JobScheduler()
        self._admission = AdmissionController(max_inflight,
                                              timeout=admission_timeout)
        self.stats = ServiceStats()
        self._leases: set[_PinLease] = set()
        self._leases_lock = threading.Lock()
        self._closed = False
        db.attach_service(self)

    # -- pins --------------------------------------------------------------

    def pin(self):
        """A database-wide snapshot pin at the current commit point, taken
        under the service's commit lock (so it cannot straddle a write).
        Pass it to submissions to run several requests against one
        consistent version; release it (or use ``with``) when done."""
        self._check_open()
        with self._write_lock:
            return self._db.pin_snapshot()

    # -- read submissions --------------------------------------------------

    def submit_query(self, table: str, columns=None, pin=None,
                     where=None, agg=None) -> StreamingCursor:
        """Full-table scan at one commit point; returns its cursor.
        ``where`` / ``agg`` push a predicate
        (:class:`~repro.engine.expr.Expr`) and/or a partial aggregate
        (:class:`~repro.engine.expr.AggSpec`) into the shard jobs."""
        return self.submit_many(
            [{"table": table, "columns": columns, "where": where,
              "agg": agg}], pin=pin)[0]

    def submit_range(self, table: str, low=None, high=None, columns=None,
                     pin=None, where=None, agg=None) -> StreamingCursor:
        """Sort-key range scan ``[low, high]`` (prefix-aware, like
        ``Database.query_range``) at one commit point, with optional
        pushed-down ``where`` predicate and ``agg`` partial aggregate."""
        return self.submit_many(
            [{"table": table, "low": low, "high": high,
              "columns": columns, "where": where, "agg": agg}], pin=pin)[0]

    def submit_many(self, requests, pin=None) -> list[StreamingCursor]:
        """Admit a batch of read requests against one shared pin.

        ``requests`` is a list of dicts with keys ``table`` and optional
        ``low`` / ``high`` / ``columns`` / ``where`` / ``agg``. The batch
        is planned before any scan starts, so requests touching the same
        shards at the same version — computing the same pushed-down
        predicate/aggregate, if any — are guaranteed to share scan jobs:
        the submission shape for concurrent analytics over one
        consistent snapshot.
        """
        self._check_open()
        requests = list(requests)
        if not requests:
            return []
        # All-or-nothing batch grant; raises ValueError when the batch
        # exceeds max_inflight outright.
        self._admission.acquire(len(requests))
        own_pin = pin is None
        plan_t0 = time.perf_counter()
        try:
            if own_pin:
                pin = self.pin()
            # Planning is side-effect free; a bad request (unknown table,
            # unknown column) fails the batch here, before any job exists.
            plans = [
                plan_scan(
                    pin, request["table"],
                    low=request.get("low"), high=request.get("high"),
                    columns=request.get("columns"),
                    where=request.get("where"), agg=request.get("agg"),
                )
                for request in requests
            ]
        except BaseException:
            if own_pin and pin is not None:
                pin.release()
            self._admission.release(len(requests))
            raise
        plan_s = time.perf_counter() - plan_t0
        tracer = self._db.obs.tracer
        lease = _PinLease(pin, owns=own_pin)
        with self._leases_lock:
            self._leases.add(lease)
        cursors: list[StreamingCursor] = []
        new_jobs: list = []
        catch_ups: list = []
        submitted = 0
        submitted_cu = 0
        try:
            for plan in plans:
                # One root span per request; shard jobs and catch-ups
                # parent to it by explicit context (they run on pool
                # threads). Finished by the cursor.
                root = (
                    tracer.begin("query", table=plan.table,
                                 shards=len(plan.parts))
                    if tracer.enabled else None
                )
                ctx = root.ctx() if root is not None else None
                feeds = []
                shared = 0
                attached = 0
                for spec in plan.parts:
                    feed, job, was_shared, catch_up = \
                        self._scheduler.schedule(
                            spec, self.block_rows, runner=self._runner)
                    feeds.append(feed)
                    if was_shared:
                        shared += 1
                    else:
                        if ctx is not None:
                            job.trace = (tracer, ctx)
                        new_jobs.append(job)
                    if catch_up is not None:
                        # Mid-scan attach: the catch-up sub-scan reads
                        # the pinned objects on its own schedule (maybe
                        # after the primary job finished) — it carries
                        # its own lease hold.
                        attached += 1
                        lease.retain()
                        catch_ups.append(
                            self._guard_catch_up(catch_up, lease, ctx))
                    # The job reads the pinned objects until it finishes —
                    # hold the lease for it, so an early cursor close
                    # cannot let maintenance rewrite state a live scan
                    # depends on.
                    lease.retain()
                    job.add_done_callback(lambda: self._lease_done(lease))
                lease.retain()  # the cursor's own hold
                cursor = StreamingCursor(
                    plan, feeds, on_finish=self._make_finisher(lease),
                    tracer=tracer, root_span=root)
                cursor.stats.shared_jobs = shared
                cursor.profile.plan_s = plan_s  # batch planning time
                cursors.append(cursor)
                self.stats.bump(
                    **{"range_queries" if plan.filtered else "queries": 1},
                    jobs_scheduled=len(plan.parts) - shared,
                    jobs_shared=shared,
                    jobs_attached=attached,
                )
            # Only now do scans start: the batch had its sharing chance.
            while submitted < len(new_jobs):
                self._pool.submit(self._run_job, new_jobs[submitted])
                submitted += 1
            while submitted_cu < len(catch_ups):
                self._pool.submit(catch_ups[submitted_cu])
                submitted_cu += 1
        except BaseException:
            # pool.submit racing close() is the realistic failure here;
            # unwind so nothing leaks: run never-submitted jobs inline
            # (other submissions may have attached to them — their feeds
            # must terminate), prime never-submitted deferred feeds the
            # same way, close our cursors, free the slots of requests
            # that never got one.
            for job in new_jobs[submitted:]:
                self._scheduler.run_job(job)
            for catch_up in catch_ups[submitted_cu:]:
                catch_up()
            for cursor in cursors:
                cursor.close()
            self._admission.release(len(requests) - len(cursors))
            self._lease_done(lease)
            raise
        self._lease_done(lease)  # drop the submission's constructor hold
        return cursors

    # -- write submissions -------------------------------------------------

    def submit_batch(self, table: str, ops) -> Future:
        """Apply a whole update batch (bulk path, one transaction, one WAL
        record) through the service; resolves to the op count."""
        return self._submit_write(
            lambda: self._db.apply_batch(table, list(ops)), "batches")

    def submit_update(self, table: str, op) -> Future:
        """Apply one scalar op — ``("ins", row) | ("del", sk) |
        ("mod", sk, column, value)`` — as its own transaction."""
        kind = op[0]
        if kind == "ins":
            work = lambda: self._db.insert(table, op[1])  # noqa: E731
        elif kind == "del":
            work = lambda: self._db.delete(table, op[1])  # noqa: E731
        elif kind == "mod":
            work = lambda: self._db.modify(table, op[1], op[2],  # noqa: E731
                                           op[3])
        else:
            raise ValueError(f"unknown op kind {kind!r}")
        return self._submit_write(work, "updates")

    def _submit_write(self, work, counter: str) -> Future:
        self._check_open()
        # Count only admitted submissions (a ServiceClosed above must not
        # inflate the write counters).
        self.stats.bump(**{counter: 1})
        obs = self._db.obs

        def locked():
            if obs.tracer.enabled:
                # Root span for the write path; txn.commit (manager) and
                # wal.group_flush (a led flush) nest under it ambiently.
                with obs.tracer.start("service.write", kind=counter):
                    return self._write_locked(work, obs)
            return self._write_locked(work, obs)

        return self._pool.submit(locked)

    def _write_locked(self, work, obs):
        manager = self._db.manager
        with self._write_lock:
            # Stage the WAL record under the lock, wait for the
            # shared group fsync outside it: the next writer runs its
            # commit CPU work while ours is being made durable.
            with manager.defer_durability():
                result = work()
            ticket = manager.take_deferred_ticket()
        if ticket is not None:
            t0 = time.perf_counter()
            if obs.tracer.enabled:
                with obs.tracer.start("wal.ack_wait") as span:
                    manager.wal.wait_durable(ticket)
                    span.attrs.update(led=ticket.led,
                                      group_size=ticket.group_size)
            else:
                manager.wal.wait_durable(ticket)
            # The deferred ack wait IS this commit's durability stage
            # (the manager timed ~0 for it inside the lock).
            obs.commit_stage_seconds["durability_wait"].observe(
                time.perf_counter() - t0)
            self.stats.bump(
                group_commits=1,
                group_flushes_led=1 if ticket.led else 0,
                group_commits_coalesced=(
                    1 if ticket.group_size > 1 else 0),
            )
        return result

    # -- asyncio façade ----------------------------------------------------

    async def query(self, table: str, columns=None, pin=None,
                    where=None, agg=None) -> StreamingCursor:
        """Async submission; iterate the returned cursor with
        ``async for``."""
        return await asyncio.to_thread(
            self.submit_query, table, columns=columns, pin=pin,
            where=where, agg=agg)

    async def query_range(self, table: str, low=None, high=None,
                          columns=None, pin=None, where=None, agg=None
                          ) -> StreamingCursor:
        return await asyncio.to_thread(
            self.submit_range, table, low=low, high=high,
            columns=columns, pin=pin, where=where, agg=agg)

    async def apply_batch(self, table: str, ops) -> int:
        return await asyncio.wrap_future(self.submit_batch(table, ops))

    async def update(self, table: str, op) -> int:
        return await asyncio.wrap_future(self.submit_update(table, op))

    # -- maintenance hook --------------------------------------------------

    def _lease_done(self, lease: _PinLease) -> None:
        if lease.release():
            with self._leases_lock:
                self._leases.discard(lease)
            # The pin this lease held may have been the last thing
            # deferring maintenance; if the service is otherwise idle no
            # later request would drain it, so kick a drain now.
            if self._admission.inflight == 0 and not self._closed:
                try:
                    self._pool.submit(self._drain_maintenance)
                except RuntimeError:
                    pass  # closing; close() handles the leftovers

    def _run_job(self, job) -> None:
        """Pool entry point for a scheduled shard job: run it under a
        ``shard.scan`` span parented (by explicit context — this is a
        pool thread) to the request that created the job."""
        trace = job.trace
        if trace is None:
            self._scheduler.run_job(job)
            self._note_pushdown(job)
            return
        tracer, ctx = trace
        with tracer.start("shard.scan", parent=ctx,
                          shard=job.spec.pinned.name) as span:
            self._scheduler.run_job(job)
            span.attrs["blocks"] = job._emitted
            span.attrs["consumers"] = job.consumers
            if job.pushdown:
                span.attrs["rows_scanned"] = \
                    job.pushdown_counter["rows_in"]
                span.attrs["rows_out"] = job.pushdown_counter["rows_out"]
        self._note_pushdown(job)

    def _note_pushdown(self, job) -> None:
        """Fold one finished pushed-down job's row accounting into the
        service counters (once per physical pass — shared consumers ride
        the same job)."""
        if not job.pushdown:
            return
        counter = job.pushdown_counter
        self.stats.bump(
            pushdown_jobs=1,
            rows_scanned=counter["rows_in"],
            rows_pushed_down=max(0, counter["rows_in"]
                                 - counter["rows_out"]),
        )

    def _guard_catch_up(self, catch_up, lease: _PinLease, ctx=None):
        """Wrap a mid-scan catch-up sub-scan: it primes its deferred feed
        whatever happens, and drops its pin-lease hold when done."""

        def run() -> None:
            try:
                tracer = self._db.obs.tracer
                if ctx is not None and tracer.enabled:
                    with tracer.start("shard.catchup", parent=ctx):
                        catch_up()
                else:
                    catch_up()
            finally:
                self._lease_done(lease)

        return run

    def _make_finisher(self, lease: _PinLease):
        def on_finish(cursor: StreamingCursor) -> None:
            self.stats.bump(blocks_streamed=cursor.stats.blocks,
                            rows_streamed=cursor.stats.rows)
            self._db.obs.observe_query(cursor.profile)
            self._lease_done(lease)
            if self._admission.release() == 0 and not self._closed:
                try:
                    self._pool.submit(self._drain_maintenance)
                except RuntimeError:
                    pass  # lost the race with close(); nothing to drain for

        return on_finish

    def _drain_maintenance(self) -> None:
        """Between-requests maintenance: run what the checkpoint scheduler
        and rebalancer deferred while pins were live — the service-side
        twin of the draining ``Database.query`` does between queries."""
        if self._closed or self._admission.inflight:
            return
        with self._write_lock:
            if self._admission.inflight:
                return  # a new request was admitted; it will drain later
            self._db.scheduler.run_pending()
            for name in self._db.sharded_names():
                # maybe_rebalance also drains retired-shard storage whose
                # pins have gone, at its quiescent entry point.
                self._db.sharded(name).maybe_rebalance()
        self.stats.bump(maintenance_runs=1)

    # -- lifecycle ---------------------------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise ServiceClosed("query service is closed")

    @property
    def closed(self) -> bool:
        return self._closed

    def inflight(self) -> int:
        return self._admission.inflight

    @property
    def admission(self) -> AdmissionController:
        return self._admission

    def close(self) -> None:
        """Reject new submissions, join the workers, release leftover pin
        leases. Already-returned cursors can still be drained (their
        blocks are buffered); idempotent."""
        if self._closed:
            return
        self._closed = True
        self._pool.shutdown(wait=True)
        # Jobs have all finished; any lease still held belongs to a
        # never-drained cursor. Shutdown outlives those readers: release
        # their pins so maintenance is not deferred forever.
        with self._leases_lock:
            leases, self._leases = list(self._leases), set()
        for lease in leases:
            lease.disown()
        self._db.detach_service(self)

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return (
            f"QueryService(inflight={self._admission.inflight}, "
            f"peak={self._admission.peak_inflight}, {state})"
        )
